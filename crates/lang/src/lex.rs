//! The lexer for the Gallina-like surface syntax.
//!
//! Identifiers may contain dots (`Old.list.cons`), so the statement
//! terminator `.` is only lexed as [`Tok::Dot`] when it is not followed by
//! another identifier character. Comments are `(* … *)` and nest.

use crate::error::{LangError, Pos, Result};

/// A token kind with its source text where relevant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal (used for `Type 1` universe levels).
    Int(u32),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `:=`
    ColonEq,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// `|`
    Pipe,
    /// `.` as a statement terminator.
    Dot,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::ColonEq => write!(f, "`:=`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::FatArrow => write!(f, "`=>`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token paired with its starting position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '\''
}

/// Lexes a full source string.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let pos_of = |offset: usize, line: usize, col: usize| Pos { offset, line, col };

    macro_rules! push {
        ($tok:expr, $p:expr) => {
            out.push(Token { tok: $tok, pos: $p })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let p = pos_of(i, line, col);
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '(' => {
                if i + 1 < chars.len() && chars[i + 1] == '*' {
                    // Nested comment.
                    let mut depth = 1;
                    let mut j = i + 2;
                    let mut l = line;
                    let mut co = col + 2;
                    while j < chars.len() && depth > 0 {
                        if chars[j] == '(' && j + 1 < chars.len() && chars[j + 1] == '*' {
                            depth += 1;
                            j += 2;
                            co += 2;
                        } else if chars[j] == '*' && j + 1 < chars.len() && chars[j + 1] == ')' {
                            depth -= 1;
                            j += 2;
                            co += 2;
                        } else {
                            if chars[j] == '\n' {
                                l += 1;
                                co = 1;
                            } else {
                                co += 1;
                            }
                            j += 1;
                        }
                    }
                    if depth > 0 {
                        return Err(LangError::Lex {
                            pos: p,
                            message: "unterminated comment".into(),
                        });
                    }
                    i = j;
                    line = l;
                    col = co;
                } else {
                    push!(Tok::LParen, p);
                    i += 1;
                    col += 1;
                }
            }
            ')' => {
                push!(Tok::RParen, p);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Tok::Comma, p);
                i += 1;
                col += 1;
            }
            '|' => {
                push!(Tok::Pipe, p);
                i += 1;
                col += 1;
            }
            ':' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(Tok::ColonEq, p);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Colon, p);
                    i += 1;
                    col += 1;
                }
            }
            '-' => {
                if i + 1 < chars.len() && chars[i + 1] == '>' {
                    push!(Tok::Arrow, p);
                    i += 2;
                    col += 2;
                } else {
                    return Err(LangError::Lex {
                        pos: p,
                        message: "expected `->`".into(),
                    });
                }
            }
            '=' => {
                if i + 1 < chars.len() && chars[i + 1] == '>' {
                    push!(Tok::FatArrow, p);
                    i += 2;
                    col += 2;
                } else {
                    return Err(LangError::Lex {
                        pos: p,
                        message: "expected `=>` (use `eq` for equality)".into(),
                    });
                }
            }
            '.' => {
                push!(Tok::Dot, p);
                i += 1;
                col += 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                let n: u32 = text.parse().map_err(|_| LangError::Lex {
                    pos: p,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                push!(Tok::Int(n), p);
                col += j - i;
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i;
                loop {
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    // A dot continues the identifier only when followed by
                    // another identifier-start character.
                    if j + 1 < chars.len() && chars[j] == '.' && is_ident_start(chars[j + 1]) {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[i..j].iter().collect();
                push!(Tok::Ident(text), p);
                col += j - i;
                i = j;
            }
            other => {
                return Err(LangError::Lex {
                    pos: p,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: pos_of(chars.len(), line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn qualified_idents_and_terminator() {
        assert_eq!(
            toks("Old.list.cons x."),
            vec![
                Tok::Ident("Old.list.cons".into()),
                Tok::Ident("x".into()),
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("(x : T) -> U => v := w, |"),
            vec![
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::Colon,
                Tok::Ident("T".into()),
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("U".into()),
                Tok::FatArrow,
                Tok::Ident("v".into()),
                Tok::ColonEq,
                Tok::Ident("w".into()),
                Tok::Comma,
                Tok::Pipe,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn nested_comments() {
        assert_eq!(
            toks("a (* outer (* inner *) still *) b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
        assert!(lex("(* unterminated").is_err());
    }

    #[test]
    fn ints_and_primes() {
        assert_eq!(
            toks("Type 1 x' n0"),
            vec![
                Tok::Ident("Type".into()),
                Tok::Int(1),
                Tok::Ident("x'".into()),
                Tok::Ident("n0".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn dot_before_non_ident_terminates() {
        // `l.` at end: dot is a terminator, not part of the identifier.
        assert_eq!(
            toks("l.\n"),
            vec![Tok::Ident("l".into()), Tok::Dot, Tok::Eof]
        );
    }

    #[test]
    fn bad_character() {
        assert!(lex("a # b").is_err());
    }
}
