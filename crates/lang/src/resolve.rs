//! Name resolution: surface expressions to kernel terms, and vernacular
//! items to environment declarations.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::inductive::{CtorDecl, InductiveDecl};
use pumpkin_kernel::name::GlobalName;
use pumpkin_kernel::term::{Binder, ElimData, Term, TermData};

use crate::ast::{BinderGroup, Expr, Item};
use crate::error::{LangError, Result};
use crate::parse::{parse_items, parse_term};

/// Resolves surface expressions against an environment plus a local scope.
pub struct Resolver<'e> {
    env: &'e Env,
    /// Inductive names currently being declared (visible before they are in
    /// the environment, so constructor types can mention their family).
    pending_inds: Vec<GlobalName>,
    locals: Vec<String>,
}

impl<'e> Resolver<'e> {
    /// A resolver with no local scope.
    pub fn new(env: &'e Env) -> Self {
        Resolver {
            env,
            pending_inds: Vec::new(),
            locals: Vec::new(),
        }
    }

    /// Makes an inductive name visible before its declaration.
    pub fn with_pending_inductive(mut self, name: impl Into<GlobalName>) -> Self {
        self.pending_inds.push(name.into());
        self
    }

    /// Pushes a local binder name (innermost last).
    pub fn push_local(&mut self, name: impl Into<String>) {
        self.locals.push(name.into());
    }

    /// Pops the innermost local binder.
    pub fn pop_local(&mut self) {
        self.locals.pop();
    }

    fn lookup(&self, pos: crate::error::Pos, name: &str) -> Result<Term> {
        // Innermost local first.
        for (k, l) in self.locals.iter().rev().enumerate() {
            if l == name {
                return Ok(Term::rel(k));
            }
        }
        if self.env.const_decl(&GlobalName::new(name)).is_ok() {
            return Ok(Term::const_(name));
        }
        if self.env.inductive(&GlobalName::new(name)).is_ok() {
            return Ok(Term::ind(name));
        }
        if let Some((ind, j)) = self.env.constructor(&GlobalName::new(name)) {
            return Ok(Term::construct(ind, j));
        }
        if self.pending_inds.iter().any(|n| n.as_str() == name) {
            return Ok(Term::ind(name));
        }
        Err(LangError::Unresolved {
            pos,
            name: name.to_string(),
        })
    }

    /// Resolves an expression to a kernel term.
    pub fn resolve(&mut self, e: &Expr) -> Result<Term> {
        match e {
            Expr::Var(pos, name) => self.lookup(*pos, name),
            Expr::Sort(_, s) => Ok(Term::sort(*s)),
            Expr::Forall(groups, body) => self.binder_form(groups, body, true),
            Expr::Fun(groups, body) => self.binder_form(groups, body, false),
            Expr::Let(name, ty, val, body) => {
                let ty = self.resolve(ty)?;
                let val = self.resolve(val)?;
                self.push_local(name.clone());
                let body = self.resolve(body);
                self.pop_local();
                Ok(Term::let_(name.as_str(), ty, val, body?))
            }
            Expr::App(f, args) => {
                let f = self.resolve(f)?;
                let args = args
                    .iter()
                    .map(|a| self.resolve(a))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Term::app(f, args))
            }
            Expr::Arrow(a, b) => {
                let a = self.resolve(a)?;
                let b = self.resolve(b)?;
                Ok(Term::arrow(a, b))
            }
            Expr::Elim {
                pos,
                scrut,
                annot,
                motive,
                cases,
            } => {
                let scrut = self.resolve(scrut)?;
                let annot_t = self.resolve(annot)?;
                let (ind, params) = match annot_t.as_ind_app() {
                    Some((ind, params)) => (ind.clone(), params.to_vec()),
                    None => {
                        return Err(LangError::NotAnInductiveAnnotation {
                            pos: *pos,
                            found: annot_t.to_string(),
                        })
                    }
                };
                let motive = self.resolve(motive)?;
                let cases = cases
                    .iter()
                    .map(|c| self.resolve(c))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Term::elim(ElimData {
                    ind,
                    params,
                    motive,
                    cases,
                    scrutinee: scrut,
                }))
            }
        }
    }

    fn binder_form(&mut self, groups: &[BinderGroup], body: &Expr, is_pi: bool) -> Result<Term> {
        // Resolve binder types left to right, pushing names as we go.
        let mut binders: Vec<Binder> = Vec::new();
        for g in groups {
            for n in &g.names {
                let ty = self.resolve(&g.ty);
                let ty = match ty {
                    Ok(t) => t,
                    Err(e) => {
                        for _ in 0..binders.len() {
                            self.pop_local();
                        }
                        return Err(e);
                    }
                };
                binders.push(Binder::new(n.as_str(), ty));
                self.push_local(n.clone());
            }
        }
        let body = self.resolve(body);
        for _ in 0..binders.len() {
            self.pop_local();
        }
        let body = body?;
        Ok(if is_pi {
            Term::pis(binders, body)
        } else {
            Term::lambdas(binders, body)
        })
    }

    /// Resolves a binder telescope (e.g. inductive parameters), returning the
    /// binders and leaving the names in scope.
    pub fn resolve_telescope(&mut self, groups: &[BinderGroup]) -> Result<Vec<Binder>> {
        let mut binders = Vec::new();
        for g in groups {
            for n in &g.names {
                let ty = self.resolve(&g.ty)?;
                binders.push(Binder::new(n.as_str(), ty));
                self.push_local(n.clone());
            }
        }
        Ok(binders)
    }
}

/// Parses and resolves a single term against an environment.
pub fn term(env: &Env, src: &str) -> Result<Term> {
    let e = parse_term(src)?;
    Resolver::new(env).resolve(&e)
}

/// Loads a resolved item into the environment.
pub fn load_item(env: &mut Env, item: &Item) -> Result<()> {
    match item {
        Item::Definition { name, ty, body } => {
            let mut r = Resolver::new(env);
            let ty = r.resolve(ty)?;
            let body = r.resolve(body)?;
            env.define(name.as_str(), ty, body)?;
            Ok(())
        }
        Item::Axiom { name, ty } => {
            let ty = Resolver::new(env).resolve(ty)?;
            env.assume(name.as_str(), ty)?;
            Ok(())
        }
        Item::Inductive {
            name,
            params,
            arity,
            ctors,
        } => {
            let decl = resolve_inductive(env, name, params, arity, ctors)?;
            env.declare_inductive(decl)?;
            Ok(())
        }
    }
}

fn resolve_inductive(
    env: &Env,
    name: &str,
    params: &[BinderGroup],
    arity: &Expr,
    ctors: &[(String, Expr)],
) -> Result<InductiveDecl> {
    let ind_name = GlobalName::new(name);
    let mut r = Resolver::new(env).with_pending_inductive(ind_name.clone());
    let param_binders = r.resolve_telescope(params)?;
    let nparams = param_binders.len();

    // Arity: ∀ index-telescope, sort (resolved under the parameters).
    let arity_t = r.resolve(arity)?;
    let (index_binders, codomain) = arity_t.strip_pis();
    let sort = codomain
        .as_sort()
        .ok_or_else(|| LangError::BadConstructor {
            name: name.to_string(),
            message: format!("arity must end in a sort, found `{codomain}`"),
        })?;

    // Constructors: each type resolved under the parameters; strip the
    // argument telescope; the codomain must be the family applied to the
    // parameter variables followed by the result indices.
    let mut ctor_decls = Vec::new();
    for (cname, cty) in ctors {
        let t = r.resolve(cty)?;
        let (args, codomain) = t.strip_pis();
        let bad = |message: String| LangError::BadConstructor {
            name: cname.clone(),
            message,
        };
        let (head, head_args) = codomain.unfold_app();
        match head.data() {
            TermData::Ind(n) if n == &ind_name => {}
            _ => {
                return Err(bad(format!(
                    "constructor must construct `{ind_name}`, found `{codomain}`"
                )))
            }
        }
        if head_args.len() < nparams {
            return Err(bad(format!(
                "constructor result applies `{ind_name}` to {} arguments, expected at least {nparams} parameters",
                head_args.len()
            )));
        }
        let depth = nparams + args.len();
        for (i, a) in head_args.iter().take(nparams).enumerate() {
            let expected = Term::rel(depth - 1 - i);
            if a != &expected {
                return Err(bad(format!(
                    "constructor result parameter #{i} must be the declared parameter, found `{a}`"
                )));
            }
        }
        ctor_decls.push(CtorDecl {
            name: GlobalName::new(cname),
            args,
            result_indices: head_args[nparams..].to_vec(),
        });
    }

    Ok(InductiveDecl {
        name: ind_name,
        params: param_binders,
        indices: index_binders,
        sort,
        ctors: ctor_decls,
    })
}

/// Parses and loads a whole vernacular source file into the environment.
///
/// Items are loaded in order; on error, earlier items remain loaded.
pub fn load_source(env: &mut Env, src: &str) -> Result<()> {
    let items = parse_items(src)?;
    for item in &items {
        load_item(env, item)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_kernel::reduce::normalize;
    use pumpkin_kernel::typecheck::infer_closed;

    const NAT_SRC: &str = "
        Inductive nat : Set := | O : nat | S : nat -> nat.
        Definition add : nat -> nat -> nat :=
          fun (n m : nat) =>
            elim n : nat return (fun (x : nat) => nat) with
            | m
            | fun (p : nat) (ih : nat) => S ih
            end.
    ";

    #[test]
    fn load_nat_and_compute() {
        let mut env = Env::new();
        load_source(&mut env, NAT_SRC).unwrap();
        let two = term(&env, "S (S O)").unwrap();
        let three = term(&env, "S (S (S O))").unwrap();
        let five = term(&env, "S (S (S (S (S O))))").unwrap();
        let sum = Term::app(Term::const_("add"), [two, three]);
        assert_eq!(normalize(&env, &sum), five);
    }

    #[test]
    fn indexed_family_vector() {
        let mut env = Env::new();
        load_source(&mut env, NAT_SRC).unwrap();
        load_source(
            &mut env,
            "Inductive vector (T : Type) : nat -> Type :=
               | vnil : vector T O
               | vcons : forall (t : T) (n : nat), vector T n -> vector T (S n).",
        )
        .unwrap();
        let decl = env.inductive(&"vector".into()).unwrap();
        assert_eq!(decl.nparams(), 1);
        assert_eq!(decl.nindices(), 1);
        // vcons : ∀ (T : Type) (t : T) (n : nat), vector T n → vector T (S n)
        let cty = decl.ctor_type(1).unwrap();
        assert!(infer_closed(&env, &cty).unwrap().as_sort().is_some());
    }

    #[test]
    fn unresolved_identifier() {
        let env = Env::new();
        assert!(matches!(
            term(&env, "mystery"),
            Err(LangError::Unresolved { .. })
        ));
    }

    #[test]
    fn shadowing_prefers_innermost() {
        let mut env = Env::new();
        load_source(&mut env, "Inductive b : Set := | tt : b.").unwrap();
        // The binder `b` shadows the global inductive.
        let t = term(&env, "fun (b : Set) => b").unwrap();
        assert_eq!(t, Term::lambda("b", Term::set(), Term::rel(0)));
    }

    #[test]
    fn bad_inductive_constructor_target() {
        let mut env = Env::new();
        load_source(&mut env, "Inductive b : Set := | tt : b.").unwrap();
        let r = load_source(&mut env, "Inductive c : Set := | mk : b.");
        assert!(matches!(r, Err(LangError::BadConstructor { .. })));
    }

    #[test]
    fn definitions_are_type_checked() {
        let mut env = Env::new();
        load_source(&mut env, "Inductive b : Set := | tt : b.").unwrap();
        let r = load_source(&mut env, "Definition bad : b := b.");
        assert!(matches!(r, Err(LangError::Kernel(_))));
    }

    #[test]
    fn let_resolution() {
        let mut env = Env::new();
        load_source(&mut env, NAT_SRC).unwrap();
        let t = term(&env, "let x : nat := O in S x").unwrap();
        assert_eq!(
            normalize(&env, &t),
            term(&env, "S O").map(|t| normalize(&env, &t)).unwrap()
        );
    }
}
