//! Annotated old→new diffs with rule citations: the renderer behind
//! `pumpkin explain <const>`.
//!
//! [`explain_decl`] walks a repaired constant's old and new declarations
//! in parallel, descending only while the two terms have the same shape,
//! and reports each *topmost* differing subterm as a [`Divergence`] —
//! pretty-printed old and new forms plus the canonical path where they
//! part ways. Provenance sites (recorded by the lift, passed in as
//! [`DiffSite`]s) are then matched against those paths to cite the
//! configuration rule that produced each divergence.
//!
//! Paths use the same canonical child indexing as the lift walk (see the
//! provenance module in `pumpkin-trace`): declaration type under `0`,
//! body under `1`; `App` head `0`, arguments `1..`; `Lambda`/`Pi` binder
//! type `0`, body `1`; `Let` type `0`, value `1`, body `2`; `Elim`
//! parameters, then motive, then cases, then scrutinee. A divergence is
//! *attributed* when a site's path is a prefix of the divergence path
//! (the rule rewrote an enclosing region) or vice versa (the rewrite
//! happened below and its shape change surfaced here, e.g. through
//! application flattening).
//!
//! This module deliberately computes attribution from the environment's
//! actual terms rather than trusting the recorder: the coverage figure
//! ([`Explanation::coverage`]) is an honest measure of how much of the
//! real diff the provenance layer explains.

use pumpkin_kernel::env::Env;
use pumpkin_kernel::term::{Term, TermData};

use crate::pretty::pretty_open;

/// Maximum rendered length of each side of a divergence.
const SIDE_MAX_CHARS: usize = 120;

/// One provenance site's location and rule label, as recorded by the lift
/// (rule names are opaque strings here; `pumpkin-lang` knows syntax, not
/// configurations).
#[derive(Clone, Copy, Debug)]
pub struct DiffSite<'a> {
    /// Canonical path of the rewrite.
    pub path: &'a [u32],
    /// Wire name of the rule that fired (`dep_constr`, `cached`, …).
    pub rule: &'a str,
}

/// A topmost point where the old and new declarations differ.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Canonical path from the declaration root.
    pub path: Vec<u32>,
    /// The old subterm, pretty-printed (possibly truncated).
    pub old: String,
    /// The new subterm, pretty-printed (possibly truncated).
    pub new: String,
    /// The citing rule, when a provenance site matched this path.
    pub rule: Option<String>,
}

/// The annotated diff of one repaired constant.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The source constant.
    pub from: String,
    /// Its repaired name.
    pub to: String,
    /// Topmost divergences, in walk order (type before body).
    pub divergences: Vec<Divergence>,
}

impl Explanation {
    /// How many divergences carry a rule citation.
    pub fn attributed(&self) -> usize {
        self.divergences.iter().filter(|d| d.rule.is_some()).count()
    }

    /// Fraction of divergences attributed to a named rule (1.0 when the
    /// terms do not differ at all).
    pub fn coverage(&self) -> f64 {
        if self.divergences.is_empty() {
            1.0
        } else {
            self.attributed() as f64 / self.divergences.len() as f64
        }
    }

    /// Renders the annotated diff: one `- old` / `+ new` pair per
    /// divergence with its path and rule citation, then the coverage
    /// line and a rule histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("explain {} → {}\n", self.from, self.to));
        if self.divergences.is_empty() {
            out.push_str("  (definitions are identical)\n");
            return out;
        }
        for d in &self.divergences {
            out.push_str(&format!(
                "  at {}  [{}]\n",
                path_label(&d.path),
                d.rule.as_deref().unwrap_or("unattributed"),
            ));
            out.push_str(&format!("    - {}\n", d.old));
            out.push_str(&format!("    + {}\n", d.new));
        }
        let mut rules: Vec<(&str, usize)> = Vec::new();
        for d in &self.divergences {
            let name = d.rule.as_deref().unwrap_or("unattributed");
            match rules.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => rules.push((name, 1)),
            }
        }
        let hist: Vec<String> = rules
            .iter()
            .map(|(n, c)| {
                if *c == 1 {
                    (*n).to_string()
                } else {
                    format!("{n}×{c}")
                }
            })
            .collect();
        out.push_str(&format!(
            "  {}/{} rewritten subterms attributed ({:.1}%): {}\n",
            self.attributed(),
            self.divergences.len(),
            100.0 * self.coverage(),
            hist.join(", "),
        ));
        out
    }
}

/// Human form of a canonical path: `type`/`body` for the declaration
/// root's two children, then dotted child indices.
fn path_label(path: &[u32]) -> String {
    match path.split_first() {
        None => "root".to_string(),
        Some((0, [])) => "type".to_string(),
        Some((1, [])) => "body".to_string(),
        Some((0, rest)) => format!(
            "type.{}",
            rest.iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(".")
        ),
        Some((1, rest)) => format!(
            "body.{}",
            rest.iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(".")
        ),
        Some(_) => path
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join("."),
    }
}

/// Explains a repaired constant: diffs `from`'s declaration against `to`'s
/// and cites `sites` at the divergence points. Returns `None` when either
/// constant is not in the environment.
pub fn explain_decl(
    env: &Env,
    from: &str,
    to: &str,
    sites: &[DiffSite<'_>],
) -> Option<Explanation> {
    let old = env.const_decl(&from.into()).ok()?.clone();
    let new = env.const_decl(&to.into()).ok()?.clone();
    let mut divergences = Vec::new();
    let mut ctx: Vec<String> = Vec::new();
    let mut path = vec![0u32];
    diff(env, &mut ctx, &old.ty, &new.ty, &mut path, &mut divergences);
    if let (Some(ob), Some(nb)) = (&old.body, &new.body) {
        path[0] = 1;
        diff(env, &mut ctx, ob, nb, &mut path, &mut divergences);
    }
    for d in &mut divergences {
        d.rule = cite(&d.path, sites);
    }
    Some(Explanation {
        from: from.to_string(),
        to: to.to_string(),
        divergences,
    })
}

/// Diffs two loose terms (both closed, or open in the same context) under
/// an explicit base path — the building block `explain_decl` applies to
/// the type and body. Exposed for tooling and tests.
pub fn explain_term(env: &Env, old: &Term, new: &Term, base: &[u32]) -> Vec<Divergence> {
    let mut divergences = Vec::new();
    let mut path = base.to_vec();
    diff(env, &mut Vec::new(), old, new, &mut path, &mut divergences);
    divergences
}

/// The best citation for a divergence at `path`: the deepest site at or
/// above it, else the shallowest site below it.
fn cite(path: &[u32], sites: &[DiffSite<'_>]) -> Option<String> {
    let above = sites
        .iter()
        .filter(|s| path.starts_with(s.path))
        .max_by_key(|s| s.path.len());
    if let Some(s) = above {
        return Some(s.rule.to_string());
    }
    sites
        .iter()
        .filter(|s| s.path.starts_with(path))
        .min_by_key(|s| s.path.len())
        .map(|s| s.rule.to_string())
}

fn clip(s: String) -> String {
    if s.chars().count() > SIDE_MAX_CHARS {
        s.chars().take(SIDE_MAX_CHARS).collect::<String>() + "…"
    } else {
        s
    }
}

fn binder_name(b: &pumpkin_kernel::term::Binder) -> String {
    b.name.as_str().unwrap_or("_").to_string()
}

/// Records the current node as a topmost divergence.
fn record(
    env: &Env,
    ctx: &[String],
    old: &Term,
    new: &Term,
    path: &[u32],
    out: &mut Vec<Divergence>,
) {
    out.push(Divergence {
        path: path.to_vec(),
        old: clip(pretty_open(env, ctx, old)),
        new: clip(pretty_open(env, ctx, new)),
        rule: None,
    });
}

/// The parallel walk: descend while shapes match, record the topmost
/// mismatch. If recursing into same-shaped children surfaces no
/// divergence (e.g. the difference is only in binder name hints), the
/// current node is recorded so no difference is ever silently dropped.
fn diff(
    env: &Env,
    ctx: &mut Vec<String>,
    old: &Term,
    new: &Term,
    path: &mut Vec<u32>,
    out: &mut Vec<Divergence>,
) {
    if old == new {
        return;
    }
    let before = out.len();
    let child = |ctx: &mut Vec<String>,
                 o: &Term,
                 n: &Term,
                 i: u32,
                 path: &mut Vec<u32>,
                 out: &mut Vec<Divergence>| {
        path.push(i);
        diff(env, ctx, o, n, path, out);
        path.pop();
    };
    match (old.data(), new.data()) {
        (TermData::App(h1, a1), TermData::App(h2, a2)) if a1.len() == a2.len() => {
            child(ctx, h1, h2, 0, path, out);
            for (i, (o, n)) in a1.iter().zip(a2.iter()).enumerate() {
                child(ctx, o, n, 1 + i as u32, path, out);
            }
        }
        (TermData::Lambda(b1, t1), TermData::Lambda(b2, t2))
        | (TermData::Pi(b1, t1), TermData::Pi(b2, t2)) => {
            child(ctx, &b1.ty, &b2.ty, 0, path, out);
            ctx.push(binder_name(b1));
            child(ctx, t1, t2, 1, path, out);
            ctx.pop();
        }
        (TermData::Let(b1, v1, t1), TermData::Let(b2, v2, t2)) => {
            child(ctx, &b1.ty, &b2.ty, 0, path, out);
            child(ctx, v1, v2, 1, path, out);
            ctx.push(binder_name(b1));
            child(ctx, t1, t2, 2, path, out);
            ctx.pop();
        }
        (TermData::Elim(e1), TermData::Elim(e2))
            if e1.ind == e2.ind
                && e1.params.len() == e2.params.len()
                && e1.cases.len() == e2.cases.len() =>
        {
            let n = e1.params.len() as u32;
            for (i, (o, nw)) in e1.params.iter().zip(e2.params.iter()).enumerate() {
                child(ctx, o, nw, i as u32, path, out);
            }
            child(ctx, &e1.motive, &e2.motive, n, path, out);
            for (i, (o, nw)) in e1.cases.iter().zip(e2.cases.iter()).enumerate() {
                child(ctx, o, nw, n + 1 + i as u32, path, out);
            }
            child(
                ctx,
                &e1.scrutinee,
                &e2.scrutinee,
                n + 1 + e1.cases.len() as u32,
                path,
                out,
            );
        }
        _ => record(env, ctx, old, new, path, out),
    }
    // Same-shaped but unequal with no child divergence (binder hints):
    // surface it here rather than dropping the difference.
    if out.len() == before {
        record(env, ctx, old, new, path, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_source;
    use pumpkin_kernel::env::Env;

    fn env_with(src: &str) -> Env {
        let mut env = Env::new();
        load_source(&mut env, src).unwrap();
        env
    }

    const BASE: &str = "
        Inductive nat : Set := | O : nat | S : nat -> nat.
        Definition a : nat := S O.
        Definition b : nat := S (S O).
        Definition twice_a : nat := S a.
        Definition twice_b : nat := S b.
        Definition same1 : nat := O.
        Definition same2 : nat := O.
    ";

    #[test]
    fn identical_definitions_have_no_divergences() {
        let env = env_with(BASE);
        let e = explain_decl(&env, "same1", "same2", &[]).unwrap();
        assert!(e.divergences.is_empty());
        assert_eq!(e.coverage(), 1.0);
        assert!(e.render().contains("identical"));
    }

    #[test]
    fn topmost_divergence_is_reported_once() {
        let env = env_with(BASE);
        // Bodies: S a vs S b → single divergence at the argument, not at
        // the App node and not below.
        let e = explain_decl(&env, "twice_a", "twice_b", &[]).unwrap();
        assert_eq!(e.divergences.len(), 1);
        assert_eq!(e.divergences[0].path, vec![1, 1]);
        assert_eq!(e.divergences[0].old, "a");
        assert_eq!(e.divergences[0].new, "b");
        assert!(e.divergences[0].rule.is_none());
        assert!((e.coverage() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn sites_cite_rules_by_path_prefix() {
        let env = env_with(BASE);
        let sites = [DiffSite {
            path: &[1],
            rule: "constant",
        }];
        let e = explain_decl(&env, "twice_a", "twice_b", &sites).unwrap();
        // Site above the divergence attributes it.
        assert_eq!(e.divergences[0].rule.as_deref(), Some("constant"));
        assert_eq!(e.attributed(), 1);
        let text = e.render();
        assert!(text.contains("at body.1  [constant]"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn sites_below_a_divergence_also_cite() {
        let env = env_with(BASE);
        // Divergence at body.1; a site recorded deeper (e.g. surfaced
        // through app flattening) still explains it.
        let sites = [DiffSite {
            path: &[1, 1, 0],
            rule: "dep_constr",
        }];
        let e = explain_decl(&env, "twice_a", "twice_b", &sites).unwrap();
        assert_eq!(e.divergences[0].rule.as_deref(), Some("dep_constr"));
    }

    #[test]
    fn unknown_constants_yield_none() {
        let env = env_with(BASE);
        assert!(explain_decl(&env, "missing", "also_missing", &[]).is_none());
    }

    #[test]
    fn explain_term_diffs_loose_terms() {
        let env = env_with(BASE);
        let old = crate::term(&env, "fun (x : nat) => S x").unwrap();
        let new = crate::term(&env, "fun (x : nat) => S (S x)").unwrap();
        let ds = explain_term(&env, &old, &new, &[]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].path, vec![1, 1]);
        assert_eq!(ds[0].old, "x");
        assert_eq!(ds[0].new, "S x");
    }
}
