//! Errors for the surface language.

use std::fmt;

use pumpkin_kernel::error::KernelError;

/// A source position (byte offset, line, column), 1-based for display.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// Byte offset into the source.
    pub offset: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing, name resolution, or downstream kernel
/// checking of parsed items.
#[derive(Clone, Debug, PartialEq)]
pub enum LangError {
    /// A lexical error (bad character, unterminated comment).
    Lex { pos: Pos, message: String },
    /// A parse error.
    Parse { pos: Pos, message: String },
    /// An identifier did not resolve to a binder or global.
    Unresolved { pos: Pos, name: String },
    /// An `elim` annotation did not denote an inductive family.
    NotAnInductiveAnnotation { pos: Pos, found: String },
    /// A constructor declaration was malformed.
    BadConstructor { name: String, message: String },
    /// The kernel rejected a parsed item.
    Kernel(KernelError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            LangError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            LangError::Unresolved { pos, name } => {
                write!(f, "unresolved identifier `{name}` at {pos}")
            }
            LangError::NotAnInductiveAnnotation { pos, found } => write!(
                f,
                "elim annotation at {pos} must be an inductive family applied to parameters, found `{found}`"
            ),
            LangError::BadConstructor { name, message } => {
                write!(f, "bad constructor `{name}`: {message}")
            }
            LangError::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<KernelError> for LangError {
    fn from(e: KernelError) -> Self {
        LangError::Kernel(e)
    }
}

/// The crate's result type.
pub type Result<T> = std::result::Result<T, LangError>;
