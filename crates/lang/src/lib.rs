//! # pumpkin-lang
//!
//! A Gallina-like surface language for the CIC_ω kernel: lexer, parser, name
//! resolution (named variables to de Bruijn indices), vernacular item
//! loading (`Inductive` / `Definition` / `Axiom`), and a pretty-printer that
//! round-trips with the parser.
//!
//! This plays the role of Coq's concrete syntax in the reproduction: the
//! standard library and all case studies are written as embedded source.
//!
//! ## Example
//!
//! ```
//! use pumpkin_kernel::prelude::*;
//! use pumpkin_lang::{load_source, term, pretty};
//!
//! # fn main() -> pumpkin_lang::error::Result<()> {
//! let mut env = Env::new();
//! load_source(&mut env, "
//!     Inductive nat : Set := | O : nat | S : nat -> nat.
//!     Definition two : nat := S (S O).
//! ")?;
//! let t = term(&env, "S two")?;
//! assert_eq!(pretty(&env, &normalize(&env, &t)), "S (S (S O))");
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod explain;
pub mod lex;
pub mod parse;
pub mod pretty;
pub mod resolve;

pub use error::{LangError, Pos};
pub use explain::{explain_decl, explain_term, DiffSite, Divergence, Explanation};
pub use parse::{parse_items, parse_term};
pub use pretty::{pretty, pretty_open};
pub use resolve::{load_item, load_source, term, Resolver};
