//! The surface abstract syntax, before name resolution.

use pumpkin_kernel::universe::Sort;

use crate::error::Pos;

/// A binder group `(x y : T)`.
#[derive(Clone, Debug, PartialEq)]
pub struct BinderGroup {
    /// The bound names (may be `_`).
    pub names: Vec<String>,
    /// Their shared type annotation.
    pub ty: Expr,
}

/// A surface expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// An identifier: a local binder or a global.
    Var(Pos, String),
    /// A sort.
    Sort(Pos, Sort),
    /// `forall groups, body`.
    Forall(Vec<BinderGroup>, Box<Expr>),
    /// `fun groups => body`.
    Fun(Vec<BinderGroup>, Box<Expr>),
    /// `let x : ty := val in body`.
    Let(String, Box<Expr>, Box<Expr>, Box<Expr>),
    /// Application `f a b …` (non-empty argument list).
    App(Box<Expr>, Vec<Expr>),
    /// `a -> b` (non-dependent product).
    Arrow(Box<Expr>, Box<Expr>),
    /// `elim scrut : I params return motive with | c … end`.
    Elim {
        /// Position of the `elim` keyword.
        pos: Pos,
        /// The scrutinee.
        scrut: Box<Expr>,
        /// The inductive family applied to its parameters.
        annot: Box<Expr>,
        /// The motive.
        motive: Box<Expr>,
        /// One case per constructor.
        cases: Vec<Expr>,
    },
}

impl Expr {
    /// The position of the leftmost token of this expression, best effort.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Var(p, _) | Expr::Sort(p, _) | Expr::Elim { pos: p, .. } => *p,
            Expr::Forall(_, b) | Expr::Fun(_, b) => b.pos(),
            Expr::Let(_, ty, _, _) => ty.pos(),
            Expr::App(f, _) => f.pos(),
            Expr::Arrow(a, _) => a.pos(),
        }
    }
}

/// A top-level vernacular item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// `Definition name : ty := body.`
    Definition {
        /// The constant's name.
        name: String,
        /// Its type.
        ty: Expr,
        /// Its body.
        body: Expr,
    },
    /// `Axiom name : ty.`
    Axiom {
        /// The axiom's name.
        name: String,
        /// Its type.
        ty: Expr,
    },
    /// `Inductive name (params…) : arity := | c : ty | … .`
    Inductive {
        /// The family's name.
        name: String,
        /// Parameter binder groups.
        params: Vec<BinderGroup>,
        /// The arity (index telescope ending in a sort).
        arity: Expr,
        /// Constructors as `(name, type)` pairs; the type is interpreted
        /// with the parameters in scope.
        ctors: Vec<(String, Expr)>,
    },
}
