//! Recursive-descent parser for the surface syntax.
//!
//! ```text
//! term        ::= 'forall' binders ',' term
//!               | 'fun' binders '=>' term
//!               | 'let' ident ':' term ':=' term 'in' term
//!               | arrow
//! arrow       ::= app ('->' arrow)?
//! app         ::= atom atom*
//! atom        ::= ident | 'Prop' | 'Set' | 'Type' int? | '(' term ')' | elim
//! elim        ::= 'elim' term ':' app 'return' term 'with' ('|' term)* 'end'
//! binders     ::= ('(' ident+ ':' term ')')+
//! item        ::= 'Definition' ident ':' term ':=' term '.'
//!               | 'Axiom' ident ':' term '.'
//!               | 'Inductive' ident binders? ':' term ':='
//!                     ('|' ident ':' term)* '.'
//! ```

use pumpkin_kernel::universe::Sort;

use crate::ast::{BinderGroup, Expr, Item};
use crate::error::{LangError, Pos, Result};
use crate::lex::{lex, Tok, Token};

const KEYWORDS: &[&str] = &[
    "forall",
    "fun",
    "let",
    "in",
    "elim",
    "return",
    "with",
    "end",
    "Prop",
    "Set",
    "Type",
    "Definition",
    "Axiom",
    "Inductive",
];

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.i]
    }

    fn peek_tok(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.i].clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(LangError::Parse {
            pos: self.pos(),
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: &Tok) -> Result<()> {
        if self.peek_tok() == tok {
            self.bump();
            Ok(())
        } else {
            self.error(format!("expected {tok}, found {}", self.peek_tok()))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek_tok(), Tok::Ident(s) if s == kw)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.at_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            self.error(format!("expected `{kw}`, found {}", self.peek_tok()))
        }
    }

    /// A non-keyword identifier.
    fn ident(&mut self) -> Result<String> {
        match self.peek_tok().clone() {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                self.bump();
                Ok(s)
            }
            other => self.error(format!("expected identifier, found {other}")),
        }
    }

    /// One or more parenthesized binder groups.
    fn binders(&mut self) -> Result<Vec<BinderGroup>> {
        let mut groups = Vec::new();
        while self.peek_tok() == &Tok::LParen {
            self.bump();
            let mut names = vec![self.ident()?];
            while matches!(self.peek_tok(), Tok::Ident(s) if !KEYWORDS.contains(&s.as_str())) {
                names.push(self.ident()?);
            }
            self.expect(&Tok::Colon)?;
            let ty = self.term()?;
            self.expect(&Tok::RParen)?;
            groups.push(BinderGroup { names, ty });
        }
        if groups.is_empty() {
            self.error("expected at least one binder group `(x : T)`")
        } else {
            Ok(groups)
        }
    }

    fn term(&mut self) -> Result<Expr> {
        if self.at_keyword("forall") {
            self.bump();
            let binders = self.binders()?;
            self.expect(&Tok::Comma)?;
            let body = self.term()?;
            Ok(Expr::Forall(binders, Box::new(body)))
        } else if self.at_keyword("fun") {
            self.bump();
            let binders = self.binders()?;
            self.expect(&Tok::FatArrow)?;
            let body = self.term()?;
            Ok(Expr::Fun(binders, Box::new(body)))
        } else if self.at_keyword("let") {
            self.bump();
            let name = self.ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.term()?;
            self.expect(&Tok::ColonEq)?;
            let val = self.term()?;
            self.expect_keyword("in")?;
            let body = self.term()?;
            Ok(Expr::Let(name, Box::new(ty), Box::new(val), Box::new(body)))
        } else {
            self.arrow()
        }
    }

    fn arrow(&mut self) -> Result<Expr> {
        let lhs = self.app()?;
        if self.peek_tok() == &Tok::Arrow {
            self.bump();
            // Right-associative; the RHS may itself be a binder form.
            let rhs = self.term()?;
            Ok(Expr::Arrow(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn at_atom_start(&self) -> bool {
        match self.peek_tok() {
            Tok::LParen => true,
            Tok::Ident(s) => !matches!(
                s.as_str(),
                "return"
                    | "with"
                    | "end"
                    | "in"
                    | "forall"
                    | "fun"
                    | "let"
                    | "Definition"
                    | "Axiom"
                    | "Inductive"
            ),
            _ => false,
        }
    }

    fn app(&mut self) -> Result<Expr> {
        let head = self.atom()?;
        let mut args = Vec::new();
        while self.at_atom_start() {
            args.push(self.atom()?);
        }
        if args.is_empty() {
            Ok(head)
        } else {
            Ok(Expr::App(Box::new(head), args))
        }
    }

    fn atom(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.peek_tok().clone() {
            Tok::LParen => {
                self.bump();
                let t = self.term()?;
                self.expect(&Tok::RParen)?;
                Ok(t)
            }
            Tok::Ident(s) => match s.as_str() {
                "Prop" => {
                    self.bump();
                    Ok(Expr::Sort(pos, Sort::Prop))
                }
                "Set" => {
                    self.bump();
                    Ok(Expr::Sort(pos, Sort::Set))
                }
                "Type" => {
                    self.bump();
                    if let Tok::Int(i) = *self.peek_tok() {
                        self.bump();
                        Ok(Expr::Sort(pos, Sort::Type(i)))
                    } else {
                        Ok(Expr::Sort(pos, Sort::Type(0)))
                    }
                }
                "elim" => self.elim(),
                kw if KEYWORDS.contains(&kw) => self.error(format!("unexpected keyword `{kw}`")),
                _ => {
                    self.bump();
                    Ok(Expr::Var(pos, s))
                }
            },
            other => self.error(format!("expected a term, found {other}")),
        }
    }

    fn elim(&mut self) -> Result<Expr> {
        let pos = self.pos();
        self.expect_keyword("elim")?;
        let scrut = self.app()?;
        self.expect(&Tok::Colon)?;
        let annot = self.app()?;
        self.expect_keyword("return")?;
        let motive = self.term()?;
        self.expect_keyword("with")?;
        let mut cases = Vec::new();
        while self.peek_tok() == &Tok::Pipe {
            self.bump();
            cases.push(self.term()?);
        }
        self.expect_keyword("end")?;
        Ok(Expr::Elim {
            pos,
            scrut: Box::new(scrut),
            annot: Box::new(annot),
            motive: Box::new(motive),
            cases,
        })
    }

    fn item(&mut self) -> Result<Item> {
        if self.at_keyword("Definition") {
            self.bump();
            let name = self.ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.term()?;
            self.expect(&Tok::ColonEq)?;
            let body = self.term()?;
            self.expect(&Tok::Dot)?;
            Ok(Item::Definition { name, ty, body })
        } else if self.at_keyword("Axiom") {
            self.bump();
            let name = self.ident()?;
            self.expect(&Tok::Colon)?;
            let ty = self.term()?;
            self.expect(&Tok::Dot)?;
            Ok(Item::Axiom { name, ty })
        } else if self.at_keyword("Inductive") {
            self.bump();
            let name = self.ident()?;
            let params = if self.peek_tok() == &Tok::LParen {
                self.binders()?
            } else {
                Vec::new()
            };
            self.expect(&Tok::Colon)?;
            let arity = self.term()?;
            self.expect(&Tok::ColonEq)?;
            let mut ctors = Vec::new();
            while self.peek_tok() == &Tok::Pipe {
                self.bump();
                let cname = self.ident()?;
                self.expect(&Tok::Colon)?;
                let cty = self.term()?;
                ctors.push((cname, cty));
            }
            self.expect(&Tok::Dot)?;
            Ok(Item::Inductive {
                name,
                params,
                arity,
                ctors,
            })
        } else {
            self.error(format!(
                "expected `Definition`, `Axiom`, or `Inductive`, found {}",
                self.peek_tok()
            ))
        }
    }
}

/// Parses a single term, requiring the whole input to be consumed.
pub fn parse_term(src: &str) -> Result<Expr> {
    let mut p = Parser {
        toks: lex(src)?,
        i: 0,
    };
    let t = p.term()?;
    if p.peek_tok() != &Tok::Eof {
        return p.error(format!("trailing input: {}", p.peek().tok));
    }
    Ok(t)
}

/// Parses a sequence of vernacular items.
pub fn parse_items(src: &str) -> Result<Vec<Item>> {
    let mut p = Parser {
        toks: lex(src)?,
        i: 0,
    };
    let mut items = Vec::new();
    while p.peek_tok() != &Tok::Eof {
        items.push(p.item()?);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lambda_and_app() {
        let e = parse_term("fun (x : T) => f x y").unwrap();
        match e {
            Expr::Fun(groups, body) => {
                assert_eq!(groups.len(), 1);
                assert_eq!(groups[0].names, vec!["x"]);
                assert!(matches!(*body, Expr::App(_, ref args) if args.len() == 2));
            }
            _ => panic!("expected fun"),
        }
    }

    #[test]
    fn arrow_is_right_associative() {
        let e = parse_term("A -> B -> C").unwrap();
        match e {
            Expr::Arrow(_, rhs) => assert!(matches!(*rhs, Expr::Arrow(_, _))),
            _ => panic!("expected arrow"),
        }
    }

    #[test]
    fn parses_forall_with_multiple_groups() {
        let e = parse_term("forall (A B : Type) (x : A), B").unwrap();
        match e {
            Expr::Forall(groups, _) => {
                assert_eq!(groups.len(), 2);
                assert_eq!(groups[0].names, vec!["A", "B"]);
            }
            _ => panic!("expected forall"),
        }
    }

    #[test]
    fn parses_elim() {
        let e = parse_term(
            "elim l : list T return (fun (l : list T) => nat) with | O | fun (t : T) (l : list T) (ih : nat) => S ih end",
        )
        .unwrap();
        match e {
            Expr::Elim { cases, .. } => assert_eq!(cases.len(), 2),
            _ => panic!("expected elim"),
        }
    }

    #[test]
    fn parses_items() {
        let items = parse_items(
            "Inductive nat : Set := | O : nat | S : nat -> nat.\n\
             Definition one : nat := S O.\n\
             Axiom magic : nat.",
        )
        .unwrap();
        assert_eq!(items.len(), 3);
        assert!(matches!(items[0], Item::Inductive { ref ctors, .. } if ctors.len() == 2));
    }

    #[test]
    fn type_levels() {
        assert!(matches!(
            parse_term("Type 2").unwrap(),
            Expr::Sort(_, Sort::Type(2))
        ));
        assert!(matches!(
            parse_term("Type").unwrap(),
            Expr::Sort(_, Sort::Type(0))
        ));
    }

    #[test]
    fn trailing_input_is_an_error() {
        assert!(parse_term("x y )").is_err());
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert!(parse_term("fun (return : T) => x").is_err());
    }

    #[test]
    fn parses_let() {
        let e = parse_term("let x : nat := O in S x").unwrap();
        assert!(matches!(e, Expr::Let(ref n, _, _, _) if n == "x"));
    }
}
