//! Pretty-printing kernel terms back to the surface syntax.
//!
//! The printer is the inverse of the parser: for any term whose globals are
//! declared, `resolve::term(env, &pretty(env, t)) == t` up to binder-name
//! hints (tested by round-trip property tests).

use std::collections::HashSet;

use pumpkin_kernel::env::Env;
use pumpkin_kernel::term::{Term, TermData};

struct Printer {
    /// Names that may not be chosen for binders (globals and outer binders).
    used: HashSet<String>,
    /// In-scope binder names, innermost last.
    scope: Vec<String>,
}

impl Printer {
    fn fresh(&mut self, hint: Option<&str>) -> String {
        let base = match hint {
            Some(h) => h.to_string(),
            None => "x".to_string(),
        };
        let mut candidate = base.clone();
        let mut i = 0;
        while self.used.contains(&candidate) {
            candidate = format!("{base}{i}");
            i += 1;
        }
        self.used.insert(candidate.clone());
        candidate
    }

    fn push(&mut self, hint: Option<&str>) -> String {
        let n = self.fresh(hint);
        self.scope.push(n.clone());
        n
    }

    fn pop(&mut self) {
        if let Some(n) = self.scope.pop() {
            self.used.remove(&n);
        }
    }

    /// Precedence levels: 0 = term (binders), 1 = arrow, 2 = application,
    /// 3 = atom.
    fn print(&mut self, t: &Term, prec: u8, out: &mut String) {
        match t.data() {
            TermData::Rel(i) => {
                let depth = self.scope.len();
                if *i < depth {
                    out.push_str(&self.scope[depth - 1 - i]);
                } else {
                    // Free variable: print a raw index (not re-parseable, but
                    // only reachable for open terms).
                    out.push_str(&format!("__free{}", i - depth));
                }
            }
            TermData::Sort(s) => match s {
                pumpkin_kernel::universe::Sort::Prop => out.push_str("Prop"),
                pumpkin_kernel::universe::Sort::Set => out.push_str("Set"),
                pumpkin_kernel::universe::Sort::Type(0) => out.push_str("Type"),
                pumpkin_kernel::universe::Sort::Type(i) => out.push_str(&format!("Type {i}")),
            },
            TermData::Const(n) | TermData::Ind(n) => out.push_str(n.as_str()),
            TermData::Construct(ind, j) => {
                // Constructors print by name (resolvable), falling back to a
                // raw form if the family is unknown.
                out.push_str(&format!("{ind}!{j}"));
            }
            TermData::App(h, args) => {
                let parens = prec > 2;
                if parens {
                    out.push('(');
                }
                self.print(h, 3, out);
                for a in args {
                    out.push(' ');
                    self.print(a, 3, out);
                }
                if parens {
                    out.push(')');
                }
            }
            TermData::Lambda(_, _) => {
                let parens = prec > 0;
                if parens {
                    out.push('(');
                }
                out.push_str("fun ");
                let mut body = t.clone();
                let mut pushed = 0;
                while let TermData::Lambda(b, inner) = body.data().clone() {
                    if pushed > 0 {
                        out.push(' ');
                    }
                    let name = self.push(b.name.as_str());
                    out.push('(');
                    out.push_str(&name);
                    out.push_str(" : ");
                    // The type is printed in the scope *before* this binder;
                    // temporarily pop it.
                    let saved = self.scope.pop().unwrap();
                    self.print(&b.ty, 0, out);
                    self.scope.push(saved);
                    out.push(')');
                    pushed += 1;
                    body = inner;
                }
                out.push_str(" => ");
                self.print(&body, 0, out);
                for _ in 0..pushed {
                    self.pop();
                }
                if parens {
                    out.push(')');
                }
            }
            TermData::Pi(b, body) => {
                if !body.has_rel(0) {
                    // Non-dependent: print as an arrow.
                    let parens = prec > 1;
                    if parens {
                        out.push('(');
                    }
                    self.print(&b.ty, 2, out);
                    out.push_str(" -> ");
                    self.push(None);
                    self.print(body, 1, out);
                    self.pop();
                    if parens {
                        out.push(')');
                    }
                } else {
                    let parens = prec > 0;
                    if parens {
                        out.push('(');
                    }
                    out.push_str("forall ");
                    let mut cur = t.clone();
                    let mut pushed = 0;
                    // Group consecutive *dependent* products under one
                    // `forall`; a trailing non-dependent product prints as an
                    // arrow inside the body.
                    while let TermData::Pi(b, inner) = cur.data().clone() {
                        if !inner.has_rel(0) {
                            break;
                        }
                        if pushed > 0 {
                            out.push(' ');
                        }
                        let name = self.push(b.name.as_str());
                        out.push('(');
                        out.push_str(&name);
                        out.push_str(" : ");
                        let saved = self.scope.pop().unwrap();
                        self.print(&b.ty, 0, out);
                        self.scope.push(saved);
                        out.push(')');
                        pushed += 1;
                        cur = inner;
                    }
                    out.push_str(", ");
                    self.print(&cur, 0, out);
                    for _ in 0..pushed {
                        self.pop();
                    }
                    if parens {
                        out.push(')');
                    }
                }
            }
            TermData::Let(b, v, body) => {
                let parens = prec > 0;
                if parens {
                    out.push('(');
                }
                out.push_str("let ");
                let name = self.push(b.name.as_str());
                out.push_str(&name);
                out.push_str(" : ");
                let saved = self.scope.pop().unwrap();
                self.print(&b.ty, 0, out);
                out.push_str(" := ");
                self.print(v, 0, out);
                self.scope.push(saved);
                out.push_str(" in ");
                self.print(body, 0, out);
                self.pop();
                if parens {
                    out.push(')');
                }
            }
            TermData::Elim(e) => {
                out.push_str("elim ");
                self.print(&e.scrutinee, 2, out);
                out.push_str(" : ");
                let ann = Term::app(Term::ind(e.ind.clone()), e.params.iter().cloned());
                self.print(&ann, 2, out);
                out.push_str(" return ");
                self.print(&e.motive, 0, out);
                out.push_str(" with");
                for c in &e.cases {
                    out.push_str(" | ");
                    self.print(c, 0, out);
                }
                out.push_str(" end");
            }
        }
    }
}

/// Pretty-prints a closed term using the environment's constructor names.
///
/// Constructor references print by their declared names (e.g. `Old.cons`),
/// which resolve back through [`crate::resolve::term`].
pub fn pretty(env: &Env, t: &Term) -> String {
    pretty_open(env, &[], t)
}

/// Pretty-prints a term that is open in a named context (`ctx` lists binder
/// names, outermost first). Used by the tactic decompiler, whose embedded
/// terms refer to hypotheses.
pub fn pretty_open(env: &Env, ctx: &[String], t: &Term) -> String {
    // Replace Construct nodes by their names first (names resolve).
    fn named(env: &Env, t: &Term) -> Term {
        match t.data() {
            TermData::Construct(ind, j) => {
                if let Ok(decl) = env.inductive(ind) {
                    if let Some(c) = decl.ctors.get(*j) {
                        // Constructors print via a Const-like name; this is
                        // purely a printing device.
                        return Term::const_(c.name.clone());
                    }
                }
                t.clone()
            }
            TermData::Rel(_) | TermData::Sort(_) | TermData::Const(_) | TermData::Ind(_) => {
                t.clone()
            }
            TermData::App(h, args) => Term::app(named(env, h), args.iter().map(|a| named(env, a))),
            TermData::Lambda(b, body) => Term::new(TermData::Lambda(
                pumpkin_kernel::term::Binder {
                    name: b.name.clone(),
                    ty: named(env, &b.ty),
                },
                named(env, body),
            )),
            TermData::Pi(b, body) => Term::new(TermData::Pi(
                pumpkin_kernel::term::Binder {
                    name: b.name.clone(),
                    ty: named(env, &b.ty),
                },
                named(env, body),
            )),
            TermData::Let(b, v, body) => Term::new(TermData::Let(
                pumpkin_kernel::term::Binder {
                    name: b.name.clone(),
                    ty: named(env, &b.ty),
                },
                named(env, v),
                named(env, body),
            )),
            TermData::Elim(e) => Term::elim(pumpkin_kernel::term::ElimData {
                ind: e.ind.clone(),
                params: e.params.iter().map(|p| named(env, p)).collect(),
                motive: named(env, &e.motive),
                cases: e.cases.iter().map(|c| named(env, c)).collect(),
                scrutinee: named(env, &e.scrutinee),
            }),
        }
    }

    let t = named(env, t);
    let mut used: HashSet<String> = ctx.iter().cloned().collect();
    t.visit(&mut |s| match s.data() {
        TermData::Const(n) | TermData::Ind(n) => {
            used.insert(n.as_str().to_string());
        }
        TermData::Elim(e) => {
            used.insert(e.ind.as_str().to_string());
        }
        _ => {}
    });
    let mut p = Printer {
        used,
        scope: ctx.to_vec(),
    };
    let mut out = String::new();
    p.print(&t, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::{load_source, term};

    fn nat_env() -> Env {
        let mut env = Env::new();
        load_source(
            &mut env,
            "Inductive nat : Set := | O : nat | S : nat -> nat.",
        )
        .unwrap();
        env
    }

    #[test]
    fn roundtrip_simple() {
        let env = nat_env();
        for src in [
            "fun (n : nat) => S n",
            "forall (P : nat -> Prop) (n : nat), P n",
            "nat -> nat",
            "fun (f : nat -> nat) (n : nat) => f (f n)",
            "let x : nat := O in S x",
        ] {
            let t = term(&env, src).unwrap();
            let printed = pretty(&env, &t);
            let t2 = term(&env, &printed).unwrap();
            assert_eq!(t, t2, "roundtrip failed for `{src}` → `{printed}`");
        }
    }

    #[test]
    fn roundtrip_elim() {
        let env = nat_env();
        let src = "fun (n : nat) =>
            elim n : nat return (fun (x : nat) => nat) with
            | O
            | fun (p : nat) (ih : nat) => S ih
            end";
        let t = term(&env, src).unwrap();
        let printed = pretty(&env, &t);
        let t2 = term(&env, &printed).unwrap();
        assert_eq!(t, t2, "printed: {printed}");
    }

    #[test]
    fn constructor_names_are_used() {
        let env = nat_env();
        let t = term(&env, "S O").unwrap();
        assert_eq!(pretty(&env, &t), "S O");
    }

    #[test]
    fn shadowed_binders_get_fresh_names() {
        let env = nat_env();
        // fun (n : nat) (n : nat) => inner n — printer must rename.
        let t = Term::lambda(
            "n",
            Term::ind("nat"),
            Term::lambda("n", Term::ind("nat"), Term::rel(1)),
        );
        let printed = pretty(&env, &t);
        let t2 = term(&env, &printed).unwrap();
        assert_eq!(t, t2, "printed: {printed}");
    }

    #[test]
    fn arrow_sugar_for_nondependent_pi() {
        let env = nat_env();
        let t = term(&env, "nat -> nat -> nat").unwrap();
        assert_eq!(pretty(&env, &t), "nat -> nat -> nat");
    }
}
