//! # pumpkin-wire
//!
//! Canonical serialization for the repair pipeline: kernel terms,
//! declarations, lifting configurations, and repair reports, in two
//! interchangeable forms —
//!
//! * a **versioned JSON form** (envelope `{"wire":"pumpkin-wire/2",…}`)
//!   built on the nested [`json::Value`] in this crate, used by the
//!   `pumpkin serve` NDJSON-RPC protocol; and
//! * a **compact length-prefixed binary form** (magic `PWIR`) whose term
//!   payload is a shared-subterm node table (each hash-consed node once,
//!   referenced by index), used by the persistent lift cache on disk.
//!
//! Both forms embed a [`TermDigest`] — a content hash derived from the
//! kernel's cached structural hash, which is computed with a fixed-key
//! hasher and therefore stable across processes — and both verify it on
//! decode, so corrupt frames surface as [`WireError::BadDigest`] instead of
//! silently wrong terms. Round-trip is exact: `decode(encode(t)) == t`,
//! with cached structural hashes recomputed on decode because decoding
//! routes through the kernel's smart constructors.
//!
//! The version tag ([`WIRE_TAG`]) participates in every digest, so bumping
//! [`WIRE_VERSION`] invalidates persisted cache entries wholesale.

use std::fmt;

use pumpkin_kernel::term::Term;

pub mod json;
pub mod report;
pub mod spec;
pub mod term;

pub use json::Value;
pub use report::{AutoWire, IncrWire, ReportWire, ReproWire, AUTO_WIRE_VERSION};
pub use spec::LiftSpec;
pub use term::{
    decl_digest, decl_from_value, decl_to_value, decode_decl, decode_term, encode_decl,
    encode_term, term_from_envelope, term_from_value, term_to_envelope, term_to_value,
};

/// Wire format version. Bumping it invalidates all persisted cache entries
/// (the version is folded into every digest) and changes [`WIRE_TAG`].
pub const WIRE_VERSION: u32 = 2;

/// The version tag carried by every JSON envelope.
pub const WIRE_TAG: &str = "pumpkin-wire/2";

/// What can go wrong decoding a frame. All decoding is total: hostile
/// input produces one of these, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Malformed JSON or binary framing.
    Syntax(String),
    /// Well-formed JSON, wrong shape (missing field, wrong type, bad tag).
    Shape(String),
    /// The envelope's version tag is not this crate's [`WIRE_TAG`].
    Version(String),
    /// The embedded content digest does not match the decoded payload.
    BadDigest { expected: u64, actual: u64 },
    /// Input ended mid-frame.
    Truncated,
    /// A frame or payload exceeds the size limit it advertises.
    Oversized { len: usize, max: usize },
    /// Nesting deeper than [`json::MAX_DEPTH`] (or the binary equivalent).
    TooDeep,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Syntax(m) => write!(f, "syntax error: {m}"),
            WireError::Shape(m) => write!(f, "shape error: {m}"),
            WireError::Version(tag) => {
                write!(f, "version mismatch: got `{tag}`, want `{WIRE_TAG}`")
            }
            WireError::BadDigest { expected, actual } => write!(
                f,
                "digest mismatch: frame says {expected:016x}, content is {actual:016x}"
            ),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes (limit {max})")
            }
            WireError::TooDeep => write!(f, "nesting too deep"),
        }
    }
}

impl std::error::Error for WireError {}

/// A content hash for a term (or any digestible wire object), stable
/// across processes.
///
/// Derived from [`Term::structural_hash`], which the kernel computes at
/// allocation with a fixed-key hasher, folded with [`WIRE_VERSION`] so a
/// format bump invalidates everything keyed by a digest. Displayed as 16
/// lowercase hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermDigest(pub u64);

impl TermDigest {
    /// The digest of a term.
    pub fn of_term(t: &Term) -> Self {
        let mut d = DigestBuilder::new();
        d.write_u64(WIRE_VERSION as u64);
        d.write_u64(t.structural_hash());
        TermDigest(d.finish())
    }

    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TermDigest)
    }
}

impl fmt::Display for TermDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An incremental FNV-1a digest over length-prefixed fields.
///
/// Used to derive composite digests (configurations, declarations) from
/// strings and term digests. Every variable-length field is written with a
/// length prefix, so `("ab","c")` and `("a","bc")` digest differently.
#[derive(Clone, Debug)]
pub struct DigestBuilder(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl DigestBuilder {
    pub fn new() -> Self {
        DigestBuilder(FNV_OFFSET)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Writes a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for DigestBuilder {
    fn default() -> Self {
        DigestBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_hex_roundtrip() {
        let d = TermDigest(0x0123_4567_89ab_cdef);
        assert_eq!(d.to_string(), "0123456789abcdef");
        assert_eq!(TermDigest::from_hex(&d.to_string()), Some(d));
        assert_eq!(TermDigest::from_hex("xyz"), None);
        assert_eq!(TermDigest::from_hex("123"), None);
    }

    #[test]
    fn digest_builder_length_prefixing_separates_fields() {
        let mut a = DigestBuilder::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = DigestBuilder::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn term_digest_is_stable_for_equal_terms() {
        use pumpkin_kernel::term::Term;
        let a = Term::lambda("x", Term::ind("nat"), Term::rel(0));
        let b = Term::lambda("y", Term::ind("nat"), Term::rel(0));
        // Alpha-equivalent terms share a structural hash, hence a digest.
        assert_eq!(TermDigest::of_term(&a), TermDigest::of_term(&b));
        assert_ne!(
            TermDigest::of_term(&a),
            TermDigest::of_term(&Term::ind("nat"))
        );
    }
}
