//! A nested JSON value with a deterministic writer and a recursive-descent
//! parser.
//!
//! `crates/trace` ships a flat-object parser tuned for its JSONL event
//! stream; the wire protocol needs real nesting (terms are trees), so this
//! module provides a full [`Value`] in the same hand-rolled, zero-dependency
//! style. Two properties the daemon relies on:
//!
//! * **Deterministic writing.** Objects preserve insertion order (they are
//!   `Vec<(String, Value)>`, not maps), numbers are written in a canonical
//!   form, and strings use the same escaper as the trace layer — so
//!   identical values always serialize to identical bytes, which is what
//!   makes the golden-transcript test and the concurrent-vs-sequential
//!   determinism check byte-exact.
//! * **Hardened parsing.** The parser is fed untrusted bytes by the daemon,
//!   so nesting is capped at [`MAX_DEPTH`] (stack safety) and all failures
//!   are structured [`WireError`]s, never panics.

use std::fmt;

use crate::WireError;
use pumpkin_trace::json::escape_into;

/// Maximum nesting depth accepted by [`Value::parse`]. Deep enough for the
/// largest terms the test suite round-trips (a length-64 list literal nests
/// ~200 levels of JSON), small enough that hostile input cannot overflow
/// the stack.
pub const MAX_DEPTH: usize = 512;

/// A JSON value. Objects keep insertion order so encoding is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers — the common case (counters, sizes, ids).
    UInt(u64),
    /// Negative integers.
    Int(i64),
    /// Non-integral numbers (only ever produced by parsing; the encoders in
    /// this crate write integers and strings).
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serializes into `out` (compact form, no whitespace).
    pub fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => {
                let buf = itoa(*n);
                out.push_str(&buf);
            }
            Value::Int(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::Num(x) => {
                use fmt::Write;
                debug_assert!(x.is_finite(), "non-finite numbers are not JSON");
                let _ = write!(out, "{x}");
            }
            // `escape_into` writes the surrounding quotes itself.
            Value::Str(s) => escape_into(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Value, WireError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(WireError::Syntax(format!(
                "trailing bytes at offset {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_into(&mut s);
        f.write_str(&s)
    }
}

fn itoa(n: u64) -> String {
    let mut s = String::new();
    use fmt::Write;
    let _ = write!(s, "{n}");
    s
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, WireError> {
        let b = self.peek().ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        let got = self.bump()?;
        if got != b {
            return Err(WireError::Syntax(format!(
                "expected `{}` at offset {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(WireError::Syntax(format!(
                "bad literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        match self.peek().ok_or(WireError::Truncated)? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b']' => return Ok(Value::Arr(items)),
                        c => {
                            return Err(WireError::Syntax(format!(
                                "expected `,` or `]` at offset {}, found `{}`",
                                self.pos - 1,
                                c as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b'}' => return Ok(Value::Obj(fields)),
                        c => {
                            return Err(WireError::Syntax(format!(
                                "expected `,` or `}}` at offset {}, found `{}`",
                                self.pos - 1,
                                c as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(WireError::Syntax(format!(
                "unexpected byte `{}` at offset {}",
                c as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => {
                    return String::from_utf8(buf)
                        .map_err(|_| WireError::Syntax("invalid UTF-8 in string".into()))
                }
                b'\\' => match self.bump()? {
                    b'"' => buf.push(b'"'),
                    b'\\' => buf.push(b'\\'),
                    b'/' => buf.push(b'/'),
                    b'b' => buf.push(0x08),
                    b'f' => buf.push(0x0c),
                    b'n' => buf.push(b'\n'),
                    b'r' => buf.push(b'\r'),
                    b't' => buf.push(b'\t'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(WireError::Syntax("bad surrogate pair".into()));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp)
                                .ok_or_else(|| WireError::Syntax("bad surrogate pair".into()))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(WireError::Syntax("lone low surrogate".into()));
                        } else {
                            char::from_u32(hi)
                                .ok_or_else(|| WireError::Syntax("bad \\u escape".into()))?
                        };
                        let mut enc = [0u8; 4];
                        buf.extend_from_slice(c.encode_utf8(&mut enc).as_bytes());
                    }
                    c => {
                        return Err(WireError::Syntax(format!(
                            "bad escape `\\{}` at offset {}",
                            c as char,
                            self.pos - 1
                        )))
                    }
                },
                0x00..=0x1f => {
                    return Err(WireError::Syntax(format!(
                        "unescaped control byte 0x{b:02x} in string"
                    )))
                }
                _ => buf.push(b),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(WireError::Syntax("bad hex digit in \\u escape".into())),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| WireError::Syntax("invalid number".into()))?;
        if !float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::Int(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            _ => Err(WireError::Syntax(format!("bad number `{text}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        Value::parse(src).unwrap().to_string()
    }

    #[test]
    fn parses_and_rewrites_canonically() {
        assert_eq!(
            roundtrip("{\"a\":1,\"b\":[true,null]}"),
            r#"{"a":1,"b":[true,null]}"#
        );
        assert_eq!(roundtrip(" [ 1 , -2 , \"x\" ] "), r#"[1,-2,"x"]"#);
        assert_eq!(roundtrip("{}"), "{}");
        assert_eq!(roundtrip("[]"), "[]");
    }

    #[test]
    fn object_order_is_preserved() {
        assert_eq!(roundtrip("{\"z\":1,\"a\":2}"), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::parse(r#""a\n\t\"\\\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\Aé😀");
        // Round-trip through the writer and parser again.
        let again = Value::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"\\q\"",
            "\"\\ud800\"",
            "1 2",
            "{\"a\":1}x",
            "\"\u{1}\"",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Unescaped raw control byte inside a string.
        assert!(Value::parse("\"\x01\"").is_err());
    }

    #[test]
    fn depth_cap_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        assert_eq!(Value::parse(&deep), Err(WireError::TooDeep));
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn numbers_classify() {
        assert_eq!(Value::parse("7").unwrap(), Value::UInt(7));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("1.5").unwrap(), Value::Num(1.5));
        assert_eq!(
            Value::parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert!(Value::parse("1e999").is_err());
    }
}
