//! The wire form of a repair report.
//!
//! A `RepairReport` proper owns event buffers, provenance trees, and a DAG;
//! the reply a client needs is much smaller: what got repaired, how the
//! schedule looked, cache behavior, and timings. This struct is that
//! projection. Two deliberate omissions keep replies byte-stable across
//! debug and release builds (the golden-transcript test runs in both):
//!
//! * raw `KernelStats` are excluded — debug builds re-typecheck merged
//!   declarations inside `admit_checked`, inflating kernel counters in a
//!   build-dependent way (the tracer is paused there, so *event-derived*
//!   metrics counters agree across builds and are included);
//! * all wall-clock fields are zeroed when a request asks for
//!   `"deterministic":true` replies.

use crate::json::Value;
use crate::WireError;

/// The flattened, serializable projection of a repair report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReportWire {
    /// `(old, new)` pairs actually repaired by this run.
    pub repaired: Vec<(String, String)>,
    /// Worker cap the run used.
    pub jobs: u64,
    /// Number of waves in the schedule.
    pub waves: u64,
    /// Widest wave.
    pub max_width: u64,
    /// In-memory subterm lift cache hits/misses.
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Constants lifted (fresh work, including persistent-cache replays).
    pub constants_lifted: u64,
    /// Subterm visits performed by the lift.
    pub visits: u64,
    /// Persistent (cross-run) cache hits/misses, when enabled.
    pub persist_hits: u64,
    pub persist_misses: u64,
    /// Wall-clock time of the repair work itself, excluding queue wait
    /// (zeroed in deterministic replies).
    pub wall_ns: u64,
    /// Event-derived metrics counters (stable across builds; see module
    /// docs), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Incremental accounting `{changed, replayed, skipped}` for
    /// differential runs; `None` (and absent on the wire) for cold runs,
    /// so cold replies stay byte-identical to pre-incremental ones.
    pub incr: Option<IncrWire>,
    /// Automatic-search accounting (see `core::auto`); `None` (and absent
    /// on the wire) for plain runs, so non-auto replies stay byte-identical
    /// to pre-auto ones.
    pub auto: Option<AutoWire>,
}

/// Version stamp of the [`AutoWire`] payload. Readers that see a different
/// version must not guess at field meanings.
pub const AUTO_WIRE_VERSION: u64 = 1;

/// The wire form of an automatic-search report (see `core::auto`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AutoWire {
    /// Description of the winning candidate configuration, when one
    /// checked; absent on the wire when the search was exhausted.
    pub winner: Option<String>,
    /// Candidates actually run through the kernel oracle.
    pub tried: u64,
    /// Candidates skipped by the process-wide failure cache.
    pub skipped_cache: u64,
    /// Candidates the oracle rejected.
    pub rejected: u64,
    /// False when the candidate loop stopped early (deadline/cancel) — a
    /// partial report.
    pub complete: bool,
    /// Per-candidate `(description, verdict, error_class, cost_ns)` rows in
    /// enumeration order; `error_class` is empty for accepted candidates
    /// and `cost_ns` is zeroed in deterministic replies.
    pub candidates: Vec<(String, String, String, u64)>,
    /// The minimized failing sub-module, when the minimizer ran.
    pub reproducer: Option<ReproWire>,
}

/// The wire form of a minimized reproducer (see `core::minimize`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReproWire {
    /// The minimized work list, in original order.
    pub names: Vec<String>,
    /// The preserved error class.
    pub class: String,
    /// The replayable reduction seed.
    pub seed: u64,
    /// Constant count of the original work list.
    pub original: u64,
    /// Oracle invocations the reduction spent.
    pub steps: u64,
}

impl AutoWire {
    pub fn to_value(&self) -> Value {
        let mut fields = vec![("v".into(), Value::UInt(AUTO_WIRE_VERSION))];
        if let Some(w) = &self.winner {
            fields.push(("winner".into(), Value::str(w)));
        }
        fields.push(("tried".into(), Value::UInt(self.tried)));
        fields.push(("skipped_cache".into(), Value::UInt(self.skipped_cache)));
        fields.push(("rejected".into(), Value::UInt(self.rejected)));
        fields.push(("complete".into(), Value::Bool(self.complete)));
        fields.push((
            "candidates".into(),
            Value::Arr(
                self.candidates
                    .iter()
                    .map(|(desc, verdict, class, cost)| {
                        Value::Arr(vec![
                            Value::str(desc),
                            Value::str(verdict),
                            Value::str(class),
                            Value::UInt(*cost),
                        ])
                    })
                    .collect(),
            ),
        ));
        if let Some(r) = &self.reproducer {
            fields.push((
                "reproducer".into(),
                Value::Obj(vec![
                    (
                        "names".into(),
                        Value::Arr(r.names.iter().map(Value::str).collect()),
                    ),
                    ("class".into(), Value::str(&r.class)),
                    ("seed".into(), Value::UInt(r.seed)),
                    ("original".into(), Value::UInt(r.original)),
                    ("steps".into(), Value::UInt(r.steps)),
                ]),
            ));
        }
        Value::Obj(fields)
    }

    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        let version = v
            .get("v")
            .and_then(Value::as_u64)
            .ok_or_else(|| WireError::Shape("auto report is missing `v`".into()))?;
        if version != AUTO_WIRE_VERSION {
            return Err(WireError::Shape(format!(
                "auto report version {version} is not supported (want {AUTO_WIRE_VERSION})"
            )));
        }
        let n = |k: &str| -> Result<u64, WireError> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| WireError::Shape(format!("auto report is missing `{k}`")))
        };
        let winner = match v.get("winner") {
            None | Some(Value::Null) => None,
            Some(w) => Some(
                w.as_str()
                    .ok_or_else(|| WireError::Shape("auto `winner` must be a string".into()))?
                    .to_string(),
            ),
        };
        let complete = v
            .get("complete")
            .and_then(Value::as_bool)
            .ok_or_else(|| WireError::Shape("auto report is missing `complete`".into()))?;
        let candidates = v
            .get("candidates")
            .and_then(Value::as_arr)
            .ok_or_else(|| WireError::Shape("auto report is missing `candidates`".into()))?
            .iter()
            .map(|row| {
                let items = row
                    .as_arr()
                    .filter(|items| items.len() == 4)
                    .ok_or_else(|| {
                        WireError::Shape("auto candidate row must have 4 entries".into())
                    })?;
                match (
                    items[0].as_str(),
                    items[1].as_str(),
                    items[2].as_str(),
                    items[3].as_u64(),
                ) {
                    (Some(d), Some(ve), Some(c), Some(cost)) => {
                        Ok((d.to_string(), ve.to_string(), c.to_string(), cost))
                    }
                    _ => Err(WireError::Shape(
                        "auto candidate row must be [str, str, str, uint]".into(),
                    )),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let reproducer = match v.get("reproducer") {
            None | Some(Value::Null) => None,
            Some(obj) => {
                let rn = |k: &str| -> Result<u64, WireError> {
                    obj.get(k).and_then(Value::as_u64).ok_or_else(|| {
                        WireError::Shape(format!("auto `reproducer` is missing `{k}`"))
                    })
                };
                let names = obj
                    .get("names")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| WireError::Shape("auto `reproducer` is missing `names`".into()))?
                    .iter()
                    .map(|s| {
                        s.as_str().map(str::to_string).ok_or_else(|| {
                            WireError::Shape("reproducer names must be strings".into())
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let class = obj
                    .get("class")
                    .and_then(Value::as_str)
                    .ok_or_else(|| WireError::Shape("auto `reproducer` is missing `class`".into()))?
                    .to_string();
                Some(ReproWire {
                    names,
                    class,
                    seed: rn("seed")?,
                    original: rn("original")?,
                    steps: rn("steps")?,
                })
            }
        };
        Ok(AutoWire {
            winner,
            tried: n("tried")?,
            skipped_cache: n("skipped_cache")?,
            rejected: n("rejected")?,
            complete,
            candidates,
            reproducer,
        })
    }
}

/// The wire form of the incremental counters (see `core::incr`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrWire {
    /// Work-list inputs whose source digest changed since the snapshot.
    pub changed: u64,
    /// Constants re-lifted fresh (the invalidated downstream closure).
    pub replayed: u64,
    /// Constants not re-lifted (persist replays or already mapped).
    pub skipped: u64,
}

impl ReportWire {
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            (
                "repaired".into(),
                Value::Arr(
                    self.repaired
                        .iter()
                        .map(|(f, t)| Value::Arr(vec![Value::str(f), Value::str(t)]))
                        .collect(),
                ),
            ),
            ("jobs".into(), Value::UInt(self.jobs)),
            ("waves".into(), Value::UInt(self.waves)),
            ("max_width".into(), Value::UInt(self.max_width)),
            ("cache_hits".into(), Value::UInt(self.cache_hits)),
            ("cache_misses".into(), Value::UInt(self.cache_misses)),
            (
                "constants_lifted".into(),
                Value::UInt(self.constants_lifted),
            ),
            ("visits".into(), Value::UInt(self.visits)),
            ("persist_hits".into(), Value::UInt(self.persist_hits)),
            ("persist_misses".into(), Value::UInt(self.persist_misses)),
            ("wall_ns".into(), Value::UInt(self.wall_ns)),
            (
                "counters".into(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                        .collect(),
                ),
            ),
        ];
        if let Some(i) = &self.incr {
            fields.push((
                "incr".into(),
                Value::Obj(vec![
                    ("changed".into(), Value::UInt(i.changed)),
                    ("replayed".into(), Value::UInt(i.replayed)),
                    ("skipped".into(), Value::UInt(i.skipped)),
                ]),
            ));
        }
        if let Some(a) = &self.auto {
            fields.push(("auto".into(), a.to_value()));
        }
        Value::Obj(fields)
    }

    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        let n = |k: &str| -> Result<u64, WireError> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| WireError::Shape(format!("report is missing counter `{k}`")))
        };
        let repaired = v
            .get("repaired")
            .and_then(Value::as_arr)
            .ok_or_else(|| WireError::Shape("report is missing `repaired`".into()))?
            .iter()
            .map(|pair| {
                let items = pair
                    .as_arr()
                    .filter(|items| items.len() == 2)
                    .ok_or_else(|| WireError::Shape("repaired entry must be a pair".into()))?;
                match (items[0].as_str(), items[1].as_str()) {
                    (Some(f), Some(t)) => Ok((f.to_string(), t.to_string())),
                    _ => Err(WireError::Shape("repaired entry must hold strings".into())),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let counters = v
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or_else(|| WireError::Shape("report is missing `counters`".into()))?
            .iter()
            .map(|(k, c)| {
                c.as_u64()
                    .map(|c| (k.clone(), c))
                    .ok_or_else(|| WireError::Shape(format!("counter `{k}` must be an integer")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let incr = match v.get("incr") {
            None | Some(Value::Null) => None,
            Some(obj) => {
                let ni = |k: &str| -> Result<u64, WireError> {
                    obj.get(k)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| WireError::Shape(format!("report `incr` is missing `{k}`")))
                };
                Some(IncrWire {
                    changed: ni("changed")?,
                    replayed: ni("replayed")?,
                    skipped: ni("skipped")?,
                })
            }
        };
        let auto = match v.get("auto") {
            None | Some(Value::Null) => None,
            Some(obj) => Some(AutoWire::from_value(obj)?),
        };
        Ok(ReportWire {
            repaired,
            jobs: n("jobs")?,
            waves: n("waves")?,
            max_width: n("max_width")?,
            cache_hits: n("cache_hits")?,
            cache_misses: n("cache_misses")?,
            constants_lifted: n("constants_lifted")?,
            visits: n("visits")?,
            persist_hits: n("persist_hits")?,
            persist_misses: n("persist_misses")?,
            wall_ns: n("wall_ns")?,
            counters,
            incr,
            auto,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip() {
        let r = ReportWire {
            repaired: vec![("Old.rev".into(), "New.rev".into())],
            jobs: 2,
            waves: 3,
            max_width: 4,
            cache_hits: 10,
            cache_misses: 5,
            constants_lifted: 1,
            visits: 99,
            persist_hits: 1,
            persist_misses: 0,
            wall_ns: 12345,
            counters: vec![("lift.constants".into(), 1)],
            incr: None,
            auto: None,
        };
        let v = Value::parse(&r.to_value().to_string()).unwrap();
        assert_eq!(ReportWire::from_value(&v).unwrap(), r);
        // A cold report's wire text never mentions incremental fields, and
        // a plain (non-auto) one never mentions the auto search.
        assert!(!r.to_value().to_string().contains("incr"));
        assert!(!r.to_value().to_string().contains("auto"));
    }

    #[test]
    fn incremental_report_roundtrip() {
        let r = ReportWire {
            repaired: vec![("Old.rev".into(), "New.rev".into())],
            incr: Some(IncrWire {
                changed: 1,
                replayed: 2,
                skipped: 11,
            }),
            ..ReportWire::default()
        };
        let v = Value::parse(&r.to_value().to_string()).unwrap();
        assert_eq!(ReportWire::from_value(&v).unwrap(), r);
    }

    #[test]
    fn auto_report_roundtrip() {
        let r = ReportWire {
            repaired: vec![("Old.rev".into(), "New.rev".into())],
            auto: Some(AutoWire {
                winner: Some("mapping#0 eta=on smart_elim=on cache=on".into()),
                tried: 2,
                skipped_cache: 1,
                rejected: 1,
                complete: true,
                candidates: vec![
                    (
                        "mapping#0 eta=on smart_elim=off cache=on".into(),
                        "rejected".into(),
                        "lang".into(),
                        10,
                    ),
                    (
                        "mapping#0 eta=on smart_elim=on cache=on".into(),
                        "accepted".into(),
                        String::new(),
                        20,
                    ),
                ],
                reproducer: None,
            }),
            ..ReportWire::default()
        };
        let v = Value::parse(&r.to_value().to_string()).unwrap();
        assert_eq!(ReportWire::from_value(&v).unwrap(), r);
    }

    #[test]
    fn exhausted_auto_report_with_reproducer_roundtrips() {
        let a = AutoWire {
            winner: None,
            tried: 8,
            skipped_cache: 0,
            rejected: 8,
            complete: true,
            candidates: Vec::new(),
            reproducer: Some(ReproWire {
                names: vec!["Old.clash".into()],
                class: "kernel".into(),
                seed: 17,
                original: 14,
                steps: 21,
            }),
        };
        let v = Value::parse(&a.to_value().to_string()).unwrap();
        assert_eq!(AutoWire::from_value(&v).unwrap(), a);
        // Exhausted searches carry no `winner` key at all.
        assert!(!a.to_value().to_string().contains("winner"));
    }

    #[test]
    fn future_auto_versions_are_rejected_not_guessed() {
        let mut a = AutoWire::default();
        a.complete = true;
        let text = a
            .to_value()
            .to_string()
            .replace("\"v\":1", &format!("\"v\":{}", AUTO_WIRE_VERSION + 1));
        let v = Value::parse(&text).unwrap();
        assert!(AutoWire::from_value(&v).is_err());
    }
}
