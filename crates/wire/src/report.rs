//! The wire form of a repair report.
//!
//! A `RepairReport` proper owns event buffers, provenance trees, and a DAG;
//! the reply a client needs is much smaller: what got repaired, how the
//! schedule looked, cache behavior, and timings. This struct is that
//! projection. Two deliberate omissions keep replies byte-stable across
//! debug and release builds (the golden-transcript test runs in both):
//!
//! * raw `KernelStats` are excluded — debug builds re-typecheck merged
//!   declarations inside `admit_checked`, inflating kernel counters in a
//!   build-dependent way (the tracer is paused there, so *event-derived*
//!   metrics counters agree across builds and are included);
//! * all wall-clock fields are zeroed when a request asks for
//!   `"deterministic":true` replies.

use crate::json::Value;
use crate::WireError;

/// The flattened, serializable projection of a repair report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReportWire {
    /// `(old, new)` pairs actually repaired by this run.
    pub repaired: Vec<(String, String)>,
    /// Worker cap the run used.
    pub jobs: u64,
    /// Number of waves in the schedule.
    pub waves: u64,
    /// Widest wave.
    pub max_width: u64,
    /// In-memory subterm lift cache hits/misses.
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Constants lifted (fresh work, including persistent-cache replays).
    pub constants_lifted: u64,
    /// Subterm visits performed by the lift.
    pub visits: u64,
    /// Persistent (cross-run) cache hits/misses, when enabled.
    pub persist_hits: u64,
    pub persist_misses: u64,
    /// Wall-clock time of the repair work itself, excluding queue wait
    /// (zeroed in deterministic replies).
    pub wall_ns: u64,
    /// Event-derived metrics counters (stable across builds; see module
    /// docs), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Incremental accounting `{changed, replayed, skipped}` for
    /// differential runs; `None` (and absent on the wire) for cold runs,
    /// so cold replies stay byte-identical to pre-incremental ones.
    pub incr: Option<IncrWire>,
}

/// The wire form of the incremental counters (see `core::incr`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrWire {
    /// Work-list inputs whose source digest changed since the snapshot.
    pub changed: u64,
    /// Constants re-lifted fresh (the invalidated downstream closure).
    pub replayed: u64,
    /// Constants not re-lifted (persist replays or already mapped).
    pub skipped: u64,
}

impl ReportWire {
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            (
                "repaired".into(),
                Value::Arr(
                    self.repaired
                        .iter()
                        .map(|(f, t)| Value::Arr(vec![Value::str(f), Value::str(t)]))
                        .collect(),
                ),
            ),
            ("jobs".into(), Value::UInt(self.jobs)),
            ("waves".into(), Value::UInt(self.waves)),
            ("max_width".into(), Value::UInt(self.max_width)),
            ("cache_hits".into(), Value::UInt(self.cache_hits)),
            ("cache_misses".into(), Value::UInt(self.cache_misses)),
            (
                "constants_lifted".into(),
                Value::UInt(self.constants_lifted),
            ),
            ("visits".into(), Value::UInt(self.visits)),
            ("persist_hits".into(), Value::UInt(self.persist_hits)),
            ("persist_misses".into(), Value::UInt(self.persist_misses)),
            ("wall_ns".into(), Value::UInt(self.wall_ns)),
            (
                "counters".into(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                        .collect(),
                ),
            ),
        ];
        if let Some(i) = &self.incr {
            fields.push((
                "incr".into(),
                Value::Obj(vec![
                    ("changed".into(), Value::UInt(i.changed)),
                    ("replayed".into(), Value::UInt(i.replayed)),
                    ("skipped".into(), Value::UInt(i.skipped)),
                ]),
            ));
        }
        Value::Obj(fields)
    }

    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        let n = |k: &str| -> Result<u64, WireError> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| WireError::Shape(format!("report is missing counter `{k}`")))
        };
        let repaired = v
            .get("repaired")
            .and_then(Value::as_arr)
            .ok_or_else(|| WireError::Shape("report is missing `repaired`".into()))?
            .iter()
            .map(|pair| {
                let items = pair
                    .as_arr()
                    .filter(|items| items.len() == 2)
                    .ok_or_else(|| WireError::Shape("repaired entry must be a pair".into()))?;
                match (items[0].as_str(), items[1].as_str()) {
                    (Some(f), Some(t)) => Ok((f.to_string(), t.to_string())),
                    _ => Err(WireError::Shape("repaired entry must hold strings".into())),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let counters = v
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or_else(|| WireError::Shape("report is missing `counters`".into()))?
            .iter()
            .map(|(k, c)| {
                c.as_u64()
                    .map(|c| (k.clone(), c))
                    .ok_or_else(|| WireError::Shape(format!("counter `{k}` must be an integer")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let incr = match v.get("incr") {
            None | Some(Value::Null) => None,
            Some(obj) => {
                let ni = |k: &str| -> Result<u64, WireError> {
                    obj.get(k)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| WireError::Shape(format!("report `incr` is missing `{k}`")))
                };
                Some(IncrWire {
                    changed: ni("changed")?,
                    replayed: ni("replayed")?,
                    skipped: ni("skipped")?,
                })
            }
        };
        Ok(ReportWire {
            repaired,
            jobs: n("jobs")?,
            waves: n("waves")?,
            max_width: n("max_width")?,
            cache_hits: n("cache_hits")?,
            cache_misses: n("cache_misses")?,
            constants_lifted: n("constants_lifted")?,
            visits: n("visits")?,
            persist_hits: n("persist_hits")?,
            persist_misses: n("persist_misses")?,
            wall_ns: n("wall_ns")?,
            counters,
            incr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip() {
        let r = ReportWire {
            repaired: vec![("Old.rev".into(), "New.rev".into())],
            jobs: 2,
            waves: 3,
            max_width: 4,
            cache_hits: 10,
            cache_misses: 5,
            constants_lifted: 1,
            visits: 99,
            persist_hits: 1,
            persist_misses: 0,
            wall_ns: 12345,
            counters: vec![("lift.constants".into(), 1)],
            incr: None,
        };
        let v = Value::parse(&r.to_value().to_string()).unwrap();
        assert_eq!(ReportWire::from_value(&v).unwrap(), r);
        // A cold report's wire text never mentions incremental fields.
        assert!(!r.to_value().to_string().contains("incr"));
    }

    #[test]
    fn incremental_report_roundtrip() {
        let r = ReportWire {
            repaired: vec![("Old.rev".into(), "New.rev".into())],
            incr: Some(IncrWire {
                changed: 1,
                replayed: 2,
                skipped: 11,
            }),
            ..ReportWire::default()
        };
        let v = Value::parse(&r.to_value().to_string()).unwrap();
        assert_eq!(ReportWire::from_value(&v).unwrap(), r);
    }
}
