//! Term and declaration codecs: versioned JSON and length-prefixed binary.
//!
//! Both directions route through the kernel's smart constructors, so the
//! cached structural hashes (and the spine invariant for applications) are
//! recomputed on decode — `decode(encode(t)) == t` holds including hashes.
//!
//! JSON form: each node is an object tagged by `"k"`; binder name hints are
//! serialized (as `null` when anonymous) even though term equality ignores
//! them, so pretty-printing survives a round-trip. Standalone terms travel
//! in an envelope `{"wire":"pumpkin-wire/2","digest":"…","term":…}` whose
//! digest is verified on decode.
//!
//! Binary form: magic `PWIR`, version byte, kind byte (`T` term, `D`
//! declaration), the content digest (u64 LE), a u32 LE payload length, then
//! a **shared-subterm node table**: a varint node count followed by the
//! term's distinct nodes in children-first order, each a tag byte whose
//! child slots are varint *backward references* into the table (the root is
//! the last node). Hash-consing in the kernel means each distinct subterm
//! is a single allocation, so the encoder emits it exactly once however
//! often it occurs — terms with heavy internal sharing (literals, repaired
//! proof spines) stay small on the wire, and decoding is **iterative**, so
//! no input depth can exhaust the stack. Forward or self references are
//! rejected, which makes cycles unrepresentable. Decoding recomputes the
//! digest from the decoded value; any mismatch is [`WireError::BadDigest`].

use pumpkin_kernel::env::ConstDecl;
use pumpkin_kernel::name::Name;
use pumpkin_kernel::term::{ElimData, Term, TermData};
use pumpkin_kernel::universe::Sort;

use crate::json::Value;
use crate::{DigestBuilder, TermDigest, WireError, WIRE_TAG, WIRE_VERSION};

/// Upper bound on binary payload size (16 MiB) — far above any term the
/// pipeline produces, low enough to bound a hostile allocation.
pub const MAX_PAYLOAD: usize = 16 << 20;

// ---------------------------------------------------------------------
// JSON form
// ---------------------------------------------------------------------

fn name_to_value(n: &Name) -> Value {
    match n.as_str() {
        Some(s) => Value::str(s),
        None => Value::Null,
    }
}

fn name_from_value(v: &Value) -> Result<Name, WireError> {
    match v {
        Value::Null => Ok(Name::Anonymous),
        Value::Str(s) => Ok(Name::named(s)),
        _ => Err(WireError::Shape(
            "binder name must be a string or null".into(),
        )),
    }
}

/// Encodes a term as a bare (envelope-less) JSON value.
pub fn term_to_value(t: &Term) -> Value {
    let kv = |k: &str, rest: Vec<(String, Value)>| {
        let mut fields = vec![("k".to_string(), Value::str(k))];
        fields.extend(rest);
        Value::Obj(fields)
    };
    match t.data() {
        TermData::Rel(i) => kv("rel", vec![("i".into(), Value::UInt(*i as u64))]),
        TermData::Sort(Sort::Prop) => kv("sort", vec![("s".into(), Value::str("prop"))]),
        TermData::Sort(Sort::Set) => kv("sort", vec![("s".into(), Value::str("set"))]),
        TermData::Sort(Sort::Type(u)) => kv(
            "sort",
            vec![
                ("s".into(), Value::str("type")),
                ("u".into(), Value::UInt(*u as u64)),
            ],
        ),
        TermData::Const(n) => kv("const", vec![("n".into(), Value::str(n.as_str()))]),
        TermData::Ind(n) => kv("ind", vec![("n".into(), Value::str(n.as_str()))]),
        TermData::Construct(n, j) => kv(
            "ctor",
            vec![
                ("n".into(), Value::str(n.as_str())),
                ("j".into(), Value::UInt(*j as u64)),
            ],
        ),
        TermData::App(h, args) => kv(
            "app",
            vec![
                ("f".into(), term_to_value(h)),
                (
                    "a".into(),
                    Value::Arr(args.iter().map(term_to_value).collect()),
                ),
            ],
        ),
        TermData::Lambda(b, body) => kv(
            "lam",
            vec![
                ("x".into(), name_to_value(&b.name)),
                ("t".into(), term_to_value(&b.ty)),
                ("b".into(), term_to_value(body)),
            ],
        ),
        TermData::Pi(b, body) => kv(
            "pi",
            vec![
                ("x".into(), name_to_value(&b.name)),
                ("t".into(), term_to_value(&b.ty)),
                ("b".into(), term_to_value(body)),
            ],
        ),
        TermData::Let(b, val, body) => kv(
            "let",
            vec![
                ("x".into(), name_to_value(&b.name)),
                ("t".into(), term_to_value(&b.ty)),
                ("v".into(), term_to_value(val)),
                ("b".into(), term_to_value(body)),
            ],
        ),
        TermData::Elim(e) => kv(
            "elim",
            vec![
                ("ind".into(), Value::str(e.ind.as_str())),
                (
                    "p".into(),
                    Value::Arr(e.params.iter().map(term_to_value).collect()),
                ),
                ("m".into(), term_to_value(&e.motive)),
                (
                    "c".into(),
                    Value::Arr(e.cases.iter().map(term_to_value).collect()),
                ),
                ("s".into(), term_to_value(&e.scrutinee)),
            ],
        ),
    }
}

fn field<'v>(v: &'v Value, k: &str, node: &str) -> Result<&'v Value, WireError> {
    v.get(k)
        .ok_or_else(|| WireError::Shape(format!("`{node}` node is missing field `{k}`")))
}

fn str_field(v: &Value, k: &str, node: &str) -> Result<String, WireError> {
    field(v, k, node)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| WireError::Shape(format!("`{node}.{k}` must be a string")))
}

fn uint_field(v: &Value, k: &str, node: &str) -> Result<u64, WireError> {
    field(v, k, node)?
        .as_u64()
        .ok_or_else(|| WireError::Shape(format!("`{node}.{k}` must be a non-negative integer")))
}

/// Decodes a bare term value (inverse of [`term_to_value`]).
pub fn term_from_value(v: &Value) -> Result<Term, WireError> {
    let kind = v
        .get("k")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::Shape("term node must be an object with a `k` tag".into()))?;
    let terms = |k: &str| -> Result<Vec<Term>, WireError> {
        field(v, k, kind)?
            .as_arr()
            .ok_or_else(|| WireError::Shape(format!("`{kind}.{k}` must be an array")))?
            .iter()
            .map(term_from_value)
            .collect()
    };
    match kind {
        "rel" => Ok(Term::rel(uint_field(v, "i", "rel")? as usize)),
        "sort" => match str_field(v, "s", "sort")?.as_str() {
            "prop" => Ok(Term::prop()),
            "set" => Ok(Term::set()),
            "type" => Ok(Term::type_(uint_field(v, "u", "sort")? as u32)),
            s => Err(WireError::Shape(format!("unknown sort `{s}`"))),
        },
        "const" => Ok(Term::const_(str_field(v, "n", "const")?)),
        "ind" => Ok(Term::ind(str_field(v, "n", "ind")?)),
        "ctor" => Ok(Term::construct(
            str_field(v, "n", "ctor")?,
            uint_field(v, "j", "ctor")? as usize,
        )),
        "app" => {
            let head = term_from_value(field(v, "f", "app")?)?;
            let args = terms("a")?;
            if args.is_empty() {
                return Err(WireError::Shape("`app.a` must be non-empty".into()));
            }
            Ok(Term::app(head, args))
        }
        "lam" | "pi" => {
            let name = name_from_value(field(v, "x", kind)?)?;
            let ty = term_from_value(field(v, "t", kind)?)?;
            let body = term_from_value(field(v, "b", kind)?)?;
            Ok(if kind == "lam" {
                Term::lambda(name, ty, body)
            } else {
                Term::pi(name, ty, body)
            })
        }
        "let" => {
            let name = name_from_value(field(v, "x", "let")?)?;
            let ty = term_from_value(field(v, "t", "let")?)?;
            let val = term_from_value(field(v, "v", "let")?)?;
            let body = term_from_value(field(v, "b", "let")?)?;
            Ok(Term::let_(name, ty, val, body))
        }
        "elim" => Ok(Term::elim(ElimData {
            ind: str_field(v, "ind", "elim")?.into(),
            params: terms("p")?,
            motive: term_from_value(field(v, "m", "elim")?)?,
            cases: terms("c")?,
            scrutinee: term_from_value(field(v, "s", "elim")?)?,
        })),
        other => Err(WireError::Shape(format!("unknown term tag `{other}`"))),
    }
}

/// Wraps a term in the versioned, digest-carrying envelope.
pub fn term_to_envelope(t: &Term) -> Value {
    Value::Obj(vec![
        ("wire".into(), Value::str(WIRE_TAG)),
        (
            "digest".into(),
            Value::str(TermDigest::of_term(t).to_string()),
        ),
        ("term".into(), term_to_value(t)),
    ])
}

/// Unwraps [`term_to_envelope`], verifying the version tag and digest.
pub fn term_from_envelope(v: &Value) -> Result<Term, WireError> {
    let tag = v
        .get("wire")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::Shape("envelope is missing `wire` tag".into()))?;
    if tag != WIRE_TAG {
        return Err(WireError::Version(tag.to_string()));
    }
    let digest = v
        .get("digest")
        .and_then(Value::as_str)
        .and_then(TermDigest::from_hex)
        .ok_or_else(|| WireError::Shape("envelope has a missing or malformed `digest`".into()))?;
    let t = term_from_value(field(v, "term", "envelope")?)?;
    let actual = TermDigest::of_term(&t);
    if actual != digest {
        return Err(WireError::BadDigest {
            expected: digest.0,
            actual: actual.0,
        });
    }
    Ok(t)
}

/// Encodes a declaration as a bare JSON value
/// (`{"name":…,"ty":…,"body":…|null,"opaque":…}`).
pub fn decl_to_value(d: &ConstDecl) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::str(d.name.as_str())),
        ("ty".into(), term_to_value(&d.ty)),
        (
            "body".into(),
            d.body.as_ref().map(term_to_value).unwrap_or(Value::Null),
        ),
        ("opaque".into(), Value::Bool(d.opaque)),
    ])
}

/// Decodes [`decl_to_value`].
pub fn decl_from_value(v: &Value) -> Result<ConstDecl, WireError> {
    let body = match field(v, "body", "decl")? {
        Value::Null => None,
        b => Some(term_from_value(b)?),
    };
    Ok(ConstDecl {
        name: str_field(v, "name", "decl")?.into(),
        ty: term_from_value(field(v, "ty", "decl")?)?,
        body,
        opaque: field(v, "opaque", "decl")?
            .as_bool()
            .ok_or_else(|| WireError::Shape("`decl.opaque` must be a bool".into()))?,
    })
}

/// A content digest for a declaration: name, type digest, body digest (or
/// absence), opacity, all under the wire version.
pub fn decl_digest(d: &ConstDecl) -> TermDigest {
    let mut h = DigestBuilder::new();
    h.write_u64(WIRE_VERSION as u64);
    h.write_str(d.name.as_str());
    h.write_u64(TermDigest::of_term(&d.ty).0);
    match &d.body {
        Some(b) => {
            h.write_u64(1);
            h.write_u64(TermDigest::of_term(b).0);
        }
        None => h.write_u64(0),
    }
    h.write_u64(d.opaque as u64);
    TermDigest(h.finish())
}

// ---------------------------------------------------------------------
// Binary form
// ---------------------------------------------------------------------

const MAGIC: &[u8; 4] = b"PWIR";
const KIND_TERM: u8 = b'T';
const KIND_DECL: u8 = b'D';

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_name(out: &mut Vec<u8>, n: &Name) {
    match n.as_str() {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

fn for_each_child(t: &Term, mut f: impl FnMut(&Term)) {
    match t.data() {
        TermData::Rel(_)
        | TermData::Sort(_)
        | TermData::Const(_)
        | TermData::Ind(_)
        | TermData::Construct(_, _) => {}
        TermData::App(h, args) => {
            f(h);
            args.iter().for_each(f);
        }
        TermData::Lambda(b, body) | TermData::Pi(b, body) => {
            f(&b.ty);
            f(body);
        }
        TermData::Let(b, val, body) => {
            f(&b.ty);
            f(val);
            f(body);
        }
        TermData::Elim(e) => {
            e.params.iter().for_each(&mut f);
            f(&e.motive);
            e.cases.iter().for_each(&mut f);
            f(&e.scrutinee);
        }
    }
}

/// Writes `t` as a node table: a varint node count, then each distinct node
/// once, children before parents, the root last. The dedup key is
/// [`Term::alloc_id`] — the interner guarantees name-identical structurally
/// equal subterms share an allocation, so every shared subterm is emitted
/// exactly once. Iterative (explicit stack): encoding depth is unbounded.
fn put_term(out: &mut Vec<u8>, t: &Term) {
    let mut index: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut order: Vec<Term> = Vec::new();
    // (node, children already pushed?) — post-order DFS.
    let mut stack: Vec<(Term, bool)> = vec![(t.clone(), false)];
    while let Some((node, expanded)) = stack.pop() {
        if index.contains_key(&node.alloc_id()) {
            continue;
        }
        if expanded {
            index.insert(node.alloc_id(), order.len() as u64);
            order.push(node);
        } else {
            stack.push((node.clone(), true));
            let mut kids = Vec::new();
            for_each_child(&node, |c| kids.push(c.clone()));
            // Reversed so the leftmost child is visited (and numbered)
            // first — cosmetic, but keeps the table order intuitive.
            stack.extend(kids.into_iter().rev().map(|c| (c, false)));
        }
    }
    put_varint(out, order.len() as u64);
    for node in &order {
        put_node(out, node, &index);
    }
}

/// Writes one table node; child positions carry varint backward references.
fn put_node(out: &mut Vec<u8>, t: &Term, index: &std::collections::HashMap<u32, u64>) {
    let put_ref = |out: &mut Vec<u8>, c: &Term| put_varint(out, index[&c.alloc_id()]);
    match t.data() {
        TermData::Rel(i) => {
            out.push(0);
            put_varint(out, *i as u64);
        }
        TermData::Sort(Sort::Prop) => out.push(1),
        TermData::Sort(Sort::Set) => out.push(2),
        TermData::Sort(Sort::Type(u)) => {
            out.push(3);
            put_varint(out, *u as u64);
        }
        TermData::Const(n) => {
            out.push(4);
            put_str(out, n.as_str());
        }
        TermData::Ind(n) => {
            out.push(5);
            put_str(out, n.as_str());
        }
        TermData::Construct(n, j) => {
            out.push(6);
            put_str(out, n.as_str());
            put_varint(out, *j as u64);
        }
        TermData::App(h, args) => {
            out.push(7);
            put_ref(out, h);
            put_varint(out, args.len() as u64);
            for a in args {
                put_ref(out, a);
            }
        }
        TermData::Lambda(b, body) => {
            out.push(8);
            put_name(out, &b.name);
            put_ref(out, &b.ty);
            put_ref(out, body);
        }
        TermData::Pi(b, body) => {
            out.push(9);
            put_name(out, &b.name);
            put_ref(out, &b.ty);
            put_ref(out, body);
        }
        TermData::Let(b, val, body) => {
            out.push(10);
            put_name(out, &b.name);
            put_ref(out, &b.ty);
            put_ref(out, val);
            put_ref(out, body);
        }
        TermData::Elim(e) => {
            out.push(11);
            put_str(out, e.ind.as_str());
            put_varint(out, e.params.len() as u64);
            for p in &e.params {
                put_ref(out, p);
            }
            put_ref(out, &e.motive);
            put_varint(out, e.cases.len() as u64);
            for c in &e.cases {
                put_ref(out, c);
            }
            put_ref(out, &e.scrutinee);
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::Syntax("varint too long".into()))
    }

    /// A varint narrowed to `usize` with an explicit range check. A plain
    /// `as` cast would silently wrap on 32-bit targets, letting a
    /// non-canonical frame (whose digest was computed over the wrapped
    /// value) decode to a different term than its bytes spell.
    fn varint_usize(&mut self) -> Result<usize, WireError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| WireError::Syntax(format!("varint {v} overflows usize")))
    }

    /// A varint narrowed to `u32`, rejecting out-of-range values for the
    /// same reason as [`Cursor::varint_usize`].
    fn varint_u32(&mut self) -> Result<u32, WireError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| WireError::Syntax(format!("varint {v} overflows u32")))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.varint_usize()?;
        if len > self.bytes.len() - self.pos {
            return Err(WireError::Truncated);
        }
        std::str::from_utf8(self.take(len)?)
            .map(str::to_string)
            .map_err(|_| WireError::Syntax("invalid UTF-8 in string".into()))
    }

    fn name(&mut self) -> Result<Name, WireError> {
        match self.byte()? {
            0 => Ok(Name::Anonymous),
            1 => Ok(Name::named(self.string()?)),
            b => Err(WireError::Syntax(format!("bad name tag {b}"))),
        }
    }

    /// Reads a `count` prefix that is about to drive `count` recursive
    /// decodes; each decoded item consumes ≥ 1 byte, so any count above
    /// the remaining length is malformed (and would otherwise let a tiny
    /// frame request a huge allocation).
    fn count(&mut self) -> Result<usize, WireError> {
        let n = self.varint_usize()?;
        if n > self.bytes.len() - self.pos {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Reads a node table (inverse of [`put_term`]): a varint count, then
    /// that many nodes, each resolving its children against the prefix of
    /// the table decoded so far. Iterative — input depth cannot exhaust the
    /// stack — and references are backward by construction (an index at or
    /// past the current position is rejected), so cycles are
    /// unrepresentable.
    fn term(&mut self) -> Result<Term, WireError> {
        let n = self.count()?;
        if n == 0 {
            return Err(WireError::Syntax("empty term node table".into()));
        }
        let mut nodes: Vec<Term> = Vec::with_capacity(n);
        for _ in 0..n {
            let t = self.node(&nodes)?;
            nodes.push(t);
        }
        Ok(nodes.pop().expect("n > 0"))
    }

    /// Resolves one backward reference against the already-decoded prefix.
    fn node_ref(&mut self, nodes: &[Term]) -> Result<Term, WireError> {
        let j = self.varint_usize()?;
        nodes.get(j).cloned().ok_or_else(|| {
            WireError::Syntax(format!(
                "node reference {j} is not backward (only {} nodes decoded)",
                nodes.len()
            ))
        })
    }

    fn node(&mut self, nodes: &[Term]) -> Result<Term, WireError> {
        match self.byte()? {
            0 => Ok(Term::rel(self.varint_usize()?)),
            1 => Ok(Term::prop()),
            2 => Ok(Term::set()),
            3 => Ok(Term::type_(self.varint_u32()?)),
            4 => Ok(Term::const_(self.string()?)),
            5 => Ok(Term::ind(self.string()?)),
            6 => {
                let n = self.string()?;
                Ok(Term::construct(n, self.varint_usize()?))
            }
            7 => {
                let head = self.node_ref(nodes)?;
                let argc = self.count()?;
                if argc == 0 {
                    return Err(WireError::Syntax("empty application spine".into()));
                }
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    args.push(self.node_ref(nodes)?);
                }
                Ok(Term::app(head, args))
            }
            8 | 9 => {
                let tag = self.bytes[self.pos - 1];
                let name = self.name()?;
                let ty = self.node_ref(nodes)?;
                let body = self.node_ref(nodes)?;
                Ok(if tag == 8 {
                    Term::lambda(name, ty, body)
                } else {
                    Term::pi(name, ty, body)
                })
            }
            10 => {
                let name = self.name()?;
                let ty = self.node_ref(nodes)?;
                let val = self.node_ref(nodes)?;
                let body = self.node_ref(nodes)?;
                Ok(Term::let_(name, ty, val, body))
            }
            11 => {
                let ind = self.string()?;
                let np = self.count()?;
                let mut params = Vec::with_capacity(np);
                for _ in 0..np {
                    params.push(self.node_ref(nodes)?);
                }
                let motive = self.node_ref(nodes)?;
                let nc = self.count()?;
                let mut cases = Vec::with_capacity(nc);
                for _ in 0..nc {
                    cases.push(self.node_ref(nodes)?);
                }
                let scrutinee = self.node_ref(nodes)?;
                Ok(Term::elim(ElimData {
                    ind: ind.into(),
                    params,
                    motive,
                    cases,
                    scrutinee,
                }))
            }
            b => Err(WireError::Syntax(format!("bad term tag {b}"))),
        }
    }
}

fn frame(kind: u8, digest: TermDigest, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 17);
    out.extend_from_slice(MAGIC);
    out.push(WIRE_VERSION as u8);
    out.push(kind);
    out.extend_from_slice(&digest.0.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn open_frame<'b>(bytes: &'b [u8], kind: u8) -> Result<(TermDigest, Cursor<'b>), WireError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.take(4)? != MAGIC {
        return Err(WireError::Syntax("bad magic".into()));
    }
    let version = cur.byte()?;
    if version as u32 != WIRE_VERSION {
        return Err(WireError::Version(format!("pumpkin-wire/{version}")));
    }
    let k = cur.byte()?;
    if k != kind {
        return Err(WireError::Shape(format!(
            "wrong frame kind `{}` (want `{}`)",
            k as char, kind as char
        )));
    }
    let digest = TermDigest(u64::from_le_bytes(cur.take(8)?.try_into().unwrap()));
    let len = u32::from_le_bytes(cur.take(4)?.try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    if bytes.len() - cur.pos != len {
        return Err(WireError::Truncated);
    }
    Ok((digest, cur))
}

/// Encodes a term as a self-contained binary frame.
pub fn encode_term(t: &Term) -> Vec<u8> {
    let mut payload = Vec::new();
    put_term(&mut payload, t);
    frame(KIND_TERM, TermDigest::of_term(t), payload)
}

/// Decodes [`encode_term`], recomputing and verifying the digest.
pub fn decode_term(bytes: &[u8]) -> Result<Term, WireError> {
    let (digest, mut cur) = open_frame(bytes, KIND_TERM)?;
    let t = cur.term()?;
    if cur.pos != bytes.len() {
        return Err(WireError::Syntax("trailing bytes in frame".into()));
    }
    let actual = TermDigest::of_term(&t);
    if actual != digest {
        return Err(WireError::BadDigest {
            expected: digest.0,
            actual: actual.0,
        });
    }
    Ok(t)
}

/// Encodes a declaration as a self-contained binary frame.
pub fn encode_decl(d: &ConstDecl) -> Vec<u8> {
    let mut payload = Vec::new();
    put_str(&mut payload, d.name.as_str());
    payload.push(d.opaque as u8);
    match &d.body {
        Some(b) => {
            payload.push(1);
            put_term(&mut payload, &d.ty);
            put_term(&mut payload, b);
        }
        None => {
            payload.push(0);
            put_term(&mut payload, &d.ty);
        }
    }
    frame(KIND_DECL, decl_digest(d), payload)
}

/// Decodes [`encode_decl`], recomputing and verifying the digest.
pub fn decode_decl(bytes: &[u8]) -> Result<ConstDecl, WireError> {
    let (digest, mut cur) = open_frame(bytes, KIND_DECL)?;
    let name = cur.string()?;
    let opaque = match cur.byte()? {
        0 => false,
        1 => true,
        b => return Err(WireError::Syntax(format!("bad opaque flag {b}"))),
    };
    let has_body = match cur.byte()? {
        0 => false,
        1 => true,
        b => return Err(WireError::Syntax(format!("bad body flag {b}"))),
    };
    let ty = cur.term()?;
    let body = if has_body { Some(cur.term()?) } else { None };
    if cur.pos != bytes.len() {
        return Err(WireError::Syntax("trailing bytes in frame".into()));
    }
    let d = ConstDecl {
        name: name.into(),
        ty,
        body,
        opaque,
    };
    let actual = decl_digest(&d);
    if actual != digest {
        return Err(WireError::BadDigest {
            expected: digest.0,
            actual: actual.0,
        });
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pumpkin_testkit::{check, Rng};

    /// A random well-formed term (structurally — not necessarily
    /// well-typed, which serialization must not care about).
    fn random_term(rng: &mut Rng, depth: usize) -> Term {
        let leaf = depth == 0 || rng.chance(2, 5);
        if leaf {
            match rng.below(6) {
                0 => Term::rel(rng.below(8) as usize),
                1 => Term::prop(),
                2 => Term::set(),
                3 => Term::type_(rng.below(4) as u32),
                4 => Term::const_(format!("c{}", rng.below(5))),
                _ => Term::construct(format!("I{}", rng.below(3)), rng.below(4) as usize),
            }
        } else {
            match rng.below(6) {
                0 => Term::app(
                    Term::const_(format!("f{}", rng.below(3))),
                    (0..1 + rng.below(3)).map(|_| random_term(rng, depth - 1)),
                ),
                1 => Term::lambda(
                    ["x", "y", "_", ""][rng.below(4) as usize],
                    random_term(rng, depth - 1),
                    random_term(rng, depth - 1),
                ),
                2 => Term::pi(
                    "p",
                    random_term(rng, depth - 1),
                    random_term(rng, depth - 1),
                ),
                3 => Term::let_(
                    "v",
                    random_term(rng, depth - 1),
                    random_term(rng, depth - 1),
                    random_term(rng, depth - 1),
                ),
                4 => Term::elim(ElimData {
                    ind: format!("I{}", rng.below(3)).into(),
                    params: (0..rng.below(2))
                        .map(|_| random_term(rng, depth - 1))
                        .collect(),
                    motive: random_term(rng, depth - 1),
                    cases: (0..1 + rng.below(3))
                        .map(|_| random_term(rng, depth - 1))
                        .collect(),
                    scrutinee: random_term(rng, depth - 1),
                }),
                _ => Term::ind(format!("I{}", rng.below(3))),
            }
        }
    }

    #[test]
    fn json_roundtrip_random_terms() {
        check(200, |rng| {
            let t = random_term(rng, 5);
            let v = term_to_envelope(&t);
            let reparsed = Value::parse(&v.to_string()).unwrap();
            let back = term_from_envelope(&reparsed).unwrap();
            assert_eq!(back, t);
            // Structural hashes are recomputed, not trusted: equal terms
            // must agree on the cached hash.
            assert_eq!(back.structural_hash(), t.structural_hash());
        });
    }

    #[test]
    fn binary_roundtrip_random_terms() {
        check(200, |rng| {
            let t = random_term(rng, 5);
            let bytes = encode_term(&t);
            let back = decode_term(&bytes).unwrap();
            assert_eq!(back, t);
            assert_eq!(back.structural_hash(), t.structural_hash());
        });
    }

    #[test]
    fn binder_names_survive_the_roundtrip() {
        let t = Term::lambda("hint", Term::prop(), Term::rel(0));
        let back = decode_term(&encode_term(&t)).unwrap();
        match back.data() {
            TermData::Lambda(b, _) => assert_eq!(b.name.as_str(), Some("hint")),
            _ => panic!("shape changed"),
        }
        let back = term_from_value(&term_to_value(&t)).unwrap();
        match back.data() {
            TermData::Lambda(b, _) => assert_eq!(b.name.as_str(), Some("hint")),
            _ => panic!("shape changed"),
        }
    }

    #[test]
    fn decl_roundtrip_both_forms() {
        check(100, |rng| {
            let d = ConstDecl {
                name: format!("M.c{}", rng.below(100)).into(),
                ty: random_term(rng, 4),
                body: if rng.bool() {
                    Some(random_term(rng, 4))
                } else {
                    None
                },
                opaque: rng.bool(),
            };
            assert_eq!(decode_decl(&encode_decl(&d)).unwrap(), d);
            let v = Value::parse(&decl_to_value(&d).to_string()).unwrap();
            assert_eq!(decl_from_value(&v).unwrap(), d);
        });
    }

    #[test]
    fn corrupt_digest_is_rejected() {
        let t = Term::app(Term::const_("f"), [Term::rel(0), Term::prop()]);
        let mut bytes = encode_term(&t);
        bytes[7] ^= 0xff; // flip a digest byte
        assert!(matches!(
            decode_term(&bytes),
            Err(WireError::BadDigest { .. })
        ));
        // Same through the JSON envelope.
        let mut env = term_to_envelope(&t);
        if let Value::Obj(fields) = &mut env {
            fields[1].1 = Value::str("00000000deadbeef");
        }
        assert!(matches!(
            term_from_envelope(&env),
            Err(WireError::BadDigest { .. })
        ));
    }

    #[test]
    fn truncated_and_malformed_frames_are_rejected() {
        let t = Term::lambda("x", Term::ind("nat"), Term::rel(0));
        let bytes = encode_term(&t);
        for cut in [0, 3, 5, 10, bytes.len() - 1] {
            assert!(decode_term(&bytes[..cut]).is_err(), "accepted cut={cut}");
        }
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_term(&wrong_magic),
            Err(WireError::Syntax(_))
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            decode_term(&wrong_version),
            Err(WireError::Version(_))
        ));
        // A count prefix larger than the remaining payload must not
        // allocate or loop.
        assert!(decode_decl(&bytes).is_err()); // term frame as decl
    }

    /// Overflowing varints must reject the frame, not wrap. The second
    /// case is the dangerous one: the digest is precomputed over the
    /// *wrapped* value, so before the checked narrowing the frame decoded
    /// "successfully" to a term its bytes do not spell — a non-canonical
    /// encoding the digest check cannot catch.
    #[test]
    fn overflowing_varints_are_rejected() {
        // Type universe far beyond u32: plain rejection. (Payloads open
        // with a node count; these tables hold a single node.)
        let mut payload = vec![1u8, 3u8];
        put_varint(&mut payload, u64::MAX);
        let bytes = frame(KIND_TERM, TermDigest(0), payload);
        assert!(matches!(decode_term(&bytes), Err(WireError::Syntax(m)) if m.contains("overflow")));

        // Type universe 5 + 2^33 wraps to 5 under `as u32`; pair it with
        // the digest of Type(5) so only the overflow check can refuse it.
        let mut payload = vec![1u8, 3u8];
        put_varint(&mut payload, 5 + (1u64 << 33));
        let bytes = frame(KIND_TERM, TermDigest::of_term(&Term::type_(5)), payload);
        assert!(matches!(decode_term(&bytes), Err(WireError::Syntax(m)) if m.contains("overflow")));

        // A huge string-length prefix inside a decl frame's name field is
        // rejected before any allocation (as overflow on 32-bit targets,
        // as truncation on 64-bit ones) — never accepted.
        let mut payload = Vec::new();
        put_varint(&mut payload, u64::MAX - 7);
        payload.extend_from_slice(b"\x00\x00");
        let bytes = frame(KIND_DECL, TermDigest(0), payload);
        assert!(decode_decl(&bytes).is_err());
    }

    #[test]
    fn envelope_version_tag_is_checked() {
        let t = Term::prop();
        let mut env = term_to_envelope(&t);
        if let Value::Obj(fields) = &mut env {
            fields[0].1 = Value::str("pumpkin-wire/99");
        }
        assert!(matches!(
            term_from_envelope(&env),
            Err(WireError::Version(_))
        ));
    }

    #[test]
    fn deep_terms_roundtrip_iteratively() {
        // 100k nested lambdas: both encode and decode are iterative, so
        // depth is limited by memory, never the call stack.
        let mut t = Term::prop();
        for _ in 0..100_000 {
            t = Term::lambda(Name::Anonymous, Term::set(), t);
        }
        let bytes = encode_term(&t);
        assert_eq!(decode_term(&bytes).unwrap(), t);
    }

    #[test]
    fn shared_subterms_are_encoded_once() {
        // A bushy term whose two halves are the same allocation: the node
        // table stores the half once, so doubling the occurrences barely
        // grows the frame.
        let mut big = Term::rel(0);
        for i in 0..64 {
            big = Term::app(Term::const_(format!("f{i}")), [big]);
        }
        let once = encode_term(&big).len();
        let twice = encode_term(&Term::app(Term::const_("pair"), [big.clone(), big.clone()])).len();
        assert!(
            twice < once + 32,
            "sharing lost: one copy {once}B, two copies {twice}B"
        );
        // And the shared form still decodes to the right term.
        let t = Term::app(Term::const_("pair"), [big.clone(), big]);
        assert_eq!(decode_term(&encode_term(&t)).unwrap(), t);
    }

    #[test]
    fn forward_and_self_references_are_rejected() {
        // A single-node table whose lambda cites itself (index 0 = the
        // node being decoded — not yet in the table, so not backward).
        let payload = vec![
            1u8, // node count
            8,   // lambda
            0,   // anonymous binder
            0,   // ty  = ref 0 (self)
            0,   // body = ref 0 (self)
        ];
        let bytes = frame(KIND_TERM, TermDigest(0), payload);
        assert!(
            matches!(decode_term(&bytes), Err(WireError::Syntax(m)) if m.contains("backward")),
            "self reference accepted"
        );

        // A two-node table where the first node cites the second.
        let payload = vec![
            2u8, // node count
            8, 0, 1, 1, // lambda with ty/body = ref 1 (forward)
            1, // Prop
        ];
        let bytes = frame(KIND_TERM, TermDigest(0), payload);
        assert!(
            matches!(decode_term(&bytes), Err(WireError::Syntax(m)) if m.contains("backward")),
            "forward reference accepted"
        );
    }
}
