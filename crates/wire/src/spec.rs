//! Declarative lifting configurations for the wire protocol.
//!
//! A `Lifting` proper holds trait objects (the matcher and builder), so it
//! cannot travel over the wire. What can is the *recipe*: which search
//! procedure to run (`kind`), over which types, with which rename rules.
//! The daemon re-runs the corresponding `configure` against its own warm
//! environment, and the spec's digest keys both the per-session config
//! cache and the on-disk persistent lift cache.

use crate::json::Value;
use crate::{DigestBuilder, TermDigest, WireError, WIRE_VERSION};

/// A serializable description of a lifting configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiftSpec {
    /// Which search procedure configures the equivalence: one of `swap`,
    /// `factor`, `ornament`, `bin`, `records`.
    pub kind: String,
    /// The source type (ignored by kinds that fix it, e.g. `ornament`).
    pub a: String,
    /// The target type.
    pub b: String,
    /// Rename rules, applied in order (`Old.` → `New.` prefix rewrites).
    pub rename: Vec<(String, String)>,
}

impl LiftSpec {
    /// The common case: a swap configuration with one prefix rule.
    pub fn swap(a: &str, b: &str, from: &str, to: &str) -> Self {
        LiftSpec {
            kind: "swap".into(),
            a: a.into(),
            b: b.into(),
            rename: vec![(from.into(), to.into())],
        }
    }

    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("kind".into(), Value::str(&self.kind)),
            ("a".into(), Value::str(&self.a)),
            ("b".into(), Value::str(&self.b)),
            (
                "rename".into(),
                Value::Arr(
                    self.rename
                        .iter()
                        .map(|(f, t)| Value::Arr(vec![Value::str(f), Value::str(t)]))
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        let s = |k: &str| -> Result<String, WireError> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| WireError::Shape(format!("config is missing string field `{k}`")))
        };
        let rename = v
            .get("rename")
            .and_then(Value::as_arr)
            .ok_or_else(|| WireError::Shape("config is missing `rename` array".into()))?
            .iter()
            .map(|pair| {
                let items = pair
                    .as_arr()
                    .filter(|items| items.len() == 2)
                    .ok_or_else(|| {
                        WireError::Shape("rename rule must be a [from,to] pair".into())
                    })?;
                match (items[0].as_str(), items[1].as_str()) {
                    (Some(f), Some(t)) => Ok((f.to_string(), t.to_string())),
                    _ => Err(WireError::Shape("rename rule must hold strings".into())),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LiftSpec {
            kind: s("kind")?,
            a: s("a")?,
            b: s("b")?,
            rename,
        })
    }

    /// The configuration digest: wire version, kind, endpoints, and rename
    /// rules in order. This keys the persistent lift cache directory, so
    /// any change to the recipe — or a wire version bump — lands in a
    /// fresh, empty cache.
    pub fn digest(&self) -> TermDigest {
        let mut h = DigestBuilder::new();
        h.write_u64(WIRE_VERSION as u64);
        h.write_str(&self.kind);
        h.write_str(&self.a);
        h.write_str(&self.b);
        h.write_u64(self.rename.len() as u64);
        for (f, t) in &self.rename {
            h.write_str(f);
            h.write_str(t);
        }
        TermDigest(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip() {
        let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
        let v = Value::parse(&spec.to_value().to_string()).unwrap();
        assert_eq!(LiftSpec::from_value(&v).unwrap(), spec);
    }

    #[test]
    fn digest_separates_specs() {
        let a = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
        let mut b = a.clone();
        b.kind = "factor".into();
        let mut c = a.clone();
        c.rename.push(("X.".into(), "Y.".into()));
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            r#"{"kind":"swap"}"#,
            r#"{"kind":"swap","a":"A","b":"B","rename":[["x"]]}"#,
            r#"{"kind":"swap","a":"A","b":"B","rename":[[1,2]]}"#,
            r#"{"kind":"swap","a":"A","b":"B","rename":"no"}"#,
        ] {
            let v = Value::parse(bad).unwrap();
            assert!(LiftSpec::from_value(&v).is_err(), "accepted {bad}");
        }
    }
}
