//! # pumpkin-testkit
//!
//! Dependency-free property-testing and micro-benchmark support.
//!
//! The workspace pins **zero external crates** so that it builds with
//! `cargo build --locked --offline` on a bare toolchain (see README.md,
//! "Reproducible builds"). This crate supplies the two pieces of
//! infrastructure the test and bench suites would otherwise pull from
//! `proptest` and `criterion`:
//!
//! * [`Rng`] — a small, fast, deterministic PRNG (splitmix64 seeding into
//!   xorshift64*), plus [`check`]/[`check_seeded`], which run a property
//!   over many random cases and report the failing seed so a failure can
//!   be replayed exactly.
//! * [`bench`] — a wall-clock micro-benchmark harness with batched setup
//!   (the setup closure is excluded from the measurement) reporting
//!   median/min/max over a configurable sample count.
//!
//! Determinism policy: every test gets a fixed default seed, so `cargo
//! test` is reproducible run-to-run and machine-to-machine. Set the
//! `PUMPKIN_TEST_SEED` environment variable to explore other universes.

use std::time::{Duration, Instant};

/// A deterministic xorshift64* PRNG.
///
/// Not cryptographic; statistically plenty for generating test cases.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // splitmix64 scramble so that consecutive seeds give unrelated
        // streams and seed 0 is usable.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng((z ^ (z >> 31)) | 1)
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        // Multiply-shift; bias is negligible for test-sized bounds.
        ((self.u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A vector of `len in [0, max_len]` elements drawn by `f`.
    pub fn vec<T>(&mut self, max_len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let len = self.index(max_len + 1);
        (0..len).map(|_| f(self)).collect()
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            p.swap(i, j);
        }
        p
    }
}

/// The base seed for [`check`]: `PUMPKIN_TEST_SEED` if set, else a fixed
/// default so plain `cargo test` is deterministic.
pub fn base_seed() -> u64 {
    match std::env::var("PUMPKIN_TEST_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("PUMPKIN_TEST_SEED must be an unsigned integer, got `{s}`")),
        Err(_) => 0xC0FF_EE00,
    }
}

/// Runs `prop` on `cases` independently seeded generators. On panic, the
/// failing case's seed is reported so it can be replayed with
/// `check_seeded(seed, 1, prop)` (or `PUMPKIN_TEST_SEED=seed`).
pub fn check(cases: u64, prop: impl FnMut(&mut Rng)) {
    check_seeded(base_seed(), cases, prop)
}

/// [`check`] with an explicit base seed.
pub fn check_seeded(base: u64, cases: u64, mut prop: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = base.wrapping_add(case);
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "property failed at case {case}/{cases} (seed {seed}); \
                 replay with PUMPKIN_TEST_SEED={seed}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// One benchmark measurement: wall-clock times per iteration, in
/// nanoseconds, sorted ascending.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark id, e.g. `"cache/on"`.
    pub id: String,
    /// Per-iteration wall-clock times, sorted.
    pub times_ns: Vec<u64>,
}

impl Sample {
    /// A sample from externally collected times (sorted here, so callers
    /// need not maintain the ordering invariant themselves).
    pub fn from_times(id: impl Into<String>, mut times_ns: Vec<u64>) -> Sample {
        assert!(!times_ns.is_empty(), "Sample::from_times with no times");
        times_ns.sort_unstable();
        Sample {
            id: id.into(),
            times_ns,
        }
    }

    /// A one-value sample — the natural carrier for derived statistics
    /// (a percentile, an inverse throughput) in a `pumpkin-bench/v1`
    /// report, where the guard reads `median_ns`.
    pub fn single(id: impl Into<String>, ns: u64) -> Sample {
        Sample {
            id: id.into(),
            times_ns: vec![ns],
        }
    }

    /// Median time per iteration.
    pub fn median(&self) -> Duration {
        Duration::from_nanos(self.times_ns[self.times_ns.len() / 2])
    }

    /// Fastest iteration.
    pub fn min(&self) -> Duration {
        Duration::from_nanos(self.times_ns[0])
    }

    /// Slowest iteration.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(*self.times_ns.last().unwrap())
    }
}

/// A latency recorder with exact percentiles.
///
/// Keeps every recorded value (load runs are tens of thousands of
/// samples, not billions, so exactness is affordable) and computes
/// nearest-rank percentiles over the sorted set. Per-thread recorders
/// [`merge`](LatencyHistogram::merge) into one before summarizing.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
}

impl LatencyHistogram {
    /// An empty recorder.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency observation, in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.samples.push(ns);
    }

    /// Folds another recorder's observations into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let total: u128 = self.samples.iter().map(|&t| t as u128).sum();
        (total / self.samples.len() as u128) as u64
    }

    /// The largest recorded value (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Nearest-rank percentile: the smallest recorded value such that at
    /// least `p`% of observations are ≤ it. `p` is clamped to [0, 100];
    /// an empty recorder reports 0. `percentile(50.0)` is the median.
    pub fn percentile(&self, p: f64) -> u64 {
        self.percentiles(&[p])[0]
    }

    /// Several nearest-rank percentiles over one shared sort.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<u64> {
        if self.samples.is_empty() {
            return vec![0; ps.len()];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        ps.iter()
            .map(|&p| {
                let p = p.clamp(0.0, 100.0);
                let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
                sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
            })
            .collect()
    }
}

/// Renders samples in the `pumpkin-bench/v1` JSON-lines format: a schema
/// header (carrying the nominal per-row sample count), then one object
/// per sample. [`Bench::to_json_lines`] and `pumpkin loadgen` both emit
/// through this, so CI's bench guard reads one format everywhere.
pub fn json_lines(nominal_samples: usize, rows: &[Sample]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"pumpkin-bench/v1\",\"samples\":{nominal_samples}}}\n",
    ));
    for s in rows {
        // Bench ids are plain ASCII identifiers; quote-escape anyway so
        // the output is always valid JSON.
        let id: String =
            s.id.chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    c => vec![c],
                })
                .collect();
        let times: Vec<String> = s.times_ns.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!(
            "{{\"id\":\"{id}\",\"samples\":{},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"times_ns\":[{}]}}\n",
            s.times_ns.len(),
            s.median().as_nanos(),
            s.min().as_nanos(),
            s.max().as_nanos(),
            times.join(",")
        ));
    }
    out
}

/// The `PUMPKIN_JOBS` override, if set to a positive integer (the same
/// variable the parallel repair scheduler reads for its default worker
/// count).
fn jobs_from_env() -> Option<usize> {
    std::env::var("PUMPKIN_JOBS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n > 0)
}

/// A minimal benchmark harness: runs `routine` `samples` times, each time
/// on a fresh value produced by `setup` (setup time is excluded), and
/// prints `id ... median [min .. max]` to stdout.
///
/// Passing `--filter <substr>[,<substr>…]` (or a bare positional
/// substring, as cargo bench forwards trailing args) skips ids matching
/// none of the comma-separated alternatives; `--jobs N` (or
/// `PUMPKIN_JOBS=N`) pins worker-count ablations (see [`Bench::jobs`]);
/// `--json PATH` additionally writes a machine-readable JSON-lines report
/// on [`Bench::finish`] (the committed `BENCH_*.json` format CI's bench
/// guard compares against); other harness flags criterion would accept
/// (`--bench`, `--save-baseline x`, ...) are ignored for drop-in
/// compatibility.
pub struct Bench {
    samples: usize,
    filter: Option<String>,
    jobs: Option<usize>,
    json: Option<String>,
    results: Vec<Sample>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

impl Bench {
    /// A harness with the default sample count (10, matching the seed
    /// repo's `Criterion::default().sample_size(10)`).
    pub fn new() -> Self {
        Bench {
            samples: 10,
            filter: None,
            jobs: jobs_from_env(),
            json: None,
            results: Vec::new(),
        }
    }

    /// A harness configured from command-line arguments.
    pub fn from_args() -> Self {
        let mut bench = Bench::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--sample-size" | "--filter" | "--jobs" | "--json" => {
                    let v = args.next();
                    match (a.as_str(), v) {
                        ("--sample-size", Some(v)) => match v.parse() {
                            Ok(n) if n > 0 => bench.samples = n,
                            _ => {
                                eprintln!(
                                    "error: --sample-size takes a positive integer, got `{v}`"
                                );
                                std::process::exit(2);
                            }
                        },
                        ("--filter", Some(v)) => bench.filter = Some(v),
                        ("--jobs", Some(v)) => match v.parse() {
                            Ok(n) if n > 0 => bench.jobs = Some(n),
                            _ => {
                                eprintln!("error: --jobs takes a positive integer, got `{v}`");
                                std::process::exit(2);
                            }
                        },
                        ("--json", Some(v)) => bench.json = Some(v),
                        _ => {}
                    }
                }
                // Flags cargo bench / criterion CLIs pass that we ignore.
                "--bench" | "--test" | "--nocapture" | "--quiet" => {}
                s if s.starts_with("--") => {
                    // Unknown --flag[=value]: skip a following value-looking
                    // argument only for `--flag value` forms we know take one.
                    if s == "--save-baseline" || s == "--baseline" || s == "--measurement-time" {
                        let _ = args.next();
                    }
                }
                // Bare positional argument: treat as a filter (cargo bench
                // convention).
                s => bench.filter = Some(s.to_string()),
            }
        }
        bench
    }

    /// Overrides the per-benchmark sample count.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// A worker-count override from `--jobs N` (or the `PUMPKIN_JOBS`
    /// environment variable). `None` means the caller should sweep its own
    /// default set of worker counts; `Some(n)` pins ablation rows to `n`
    /// so worker counts can be swept from the command line without
    /// recompiling.
    pub fn jobs(&self) -> Option<usize> {
        self.jobs
    }

    /// Measures `routine` on fresh `setup` outputs, recording and printing
    /// the result. Returns the sample (also retained for [`finish`]).
    pub fn bench<T, R>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> R,
    ) -> Option<&Sample> {
        if let Some(f) = &self.filter {
            // Comma-separated alternatives: keep ids matching any part.
            if !f.split(',').any(|part| id.contains(part)) {
                return None;
            }
        }
        let mut times: Vec<u64> = Vec::with_capacity(self.samples);
        // One warm-up iteration outside the measurement.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            std::hint::black_box(out);
            times.push(elapsed.as_nanos() as u64);
        }
        times.sort_unstable();
        let sample = Sample {
            id: id.to_string(),
            times_ns: times,
        };
        println!(
            "{:<40} median {:>12?}   [{:?} .. {:?}]",
            sample.id,
            sample.median(),
            sample.min(),
            sample.max()
        );
        self.results.push(sample);
        Some(self.results.last().unwrap())
    }

    /// Measures a routine with no per-iteration setup.
    pub fn bench_fn<R>(&mut self, id: &str, mut routine: impl FnMut() -> R) -> Option<&Sample> {
        self.bench(id, || (), move |()| routine())
    }

    /// All recorded samples.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Renders the recorded samples as JSON lines: a schema header, then
    /// one object per sample (the `--json PATH` / `BENCH_*.json` format).
    pub fn to_json_lines(&self) -> String {
        json_lines(self.samples, &self.results)
    }

    /// Prints a closing summary line (and writes the `--json` report if one
    /// was requested). Call at the end of `main`.
    pub fn finish(self) {
        if let Some(path) = &self.json {
            match std::fs::write(path, self.to_json_lines()) {
                Ok(()) => println!("bench report written to {path}"),
                Err(e) => {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        println!("benchmarks complete: {} measured", self.results.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.u64(), c.u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = Rng::new(11);
        for n in [0usize, 1, 2, 6, 30] {
            let mut p = rng.permutation(n);
            p.sort_unstable();
            assert_eq!(p, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn check_runs_all_cases() {
        let mut n = 0;
        check(16, |_| n += 1);
        assert_eq!(n, 16);
    }

    #[test]
    fn bench_jobs_default_and_override() {
        // Without PUMPKIN_JOBS in the test environment, new() has no pin
        // (if the variable is exported, it must parse to a positive count).
        let b = Bench::new();
        match std::env::var("PUMPKIN_JOBS") {
            Ok(_) => assert!(b.jobs().is_some_and(|n| n > 0)),
            Err(_) => assert_eq!(b.jobs(), None),
        }
        let mut b2 = Bench::new();
        b2.jobs = Some(3);
        assert_eq!(b2.jobs(), Some(3));
    }

    #[test]
    fn histogram_percentiles_are_nearest_rank() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        for v in 1..=100u64 {
            h.record(v * 10);
        }
        assert_eq!(h.len(), 100);
        assert_eq!(h.percentile(50.0), 500);
        assert_eq!(h.percentile(95.0), 950);
        assert_eq!(h.percentile(99.0), 990);
        assert_eq!(h.percentile(100.0), 1000);
        assert_eq!(h.percentile(0.0), 10);
        assert_eq!(h.mean_ns(), 505);
        assert_eq!(h.max_ns(), 1000);
        // Merging is observation-union: percentiles see both recorders.
        let mut other = LatencyHistogram::new();
        other.record(2000);
        h.merge(&other);
        assert_eq!(h.percentile(100.0), 2000);
        assert_eq!(h.len(), 101);
    }

    #[test]
    fn single_value_samples_carry_derived_stats() {
        let s = Sample::single("serve_load/p99", 1234);
        assert_eq!(s.median().as_nanos(), 1234);
        let s = Sample::from_times("x", vec![3, 1, 2]);
        assert_eq!(s.times_ns, vec![1, 2, 3]);
        let json = json_lines(1, &[s]);
        assert!(json.lines().count() == 2);
        assert!(json.contains("\"median_ns\":2"));
    }

    #[test]
    fn json_report_has_header_and_one_line_per_sample() {
        let mut b = Bench::new().sample_size(2);
        b.bench_fn("a/one", || 1 + 1);
        b.bench_fn("b/two", || 2 + 2);
        let json = b.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"pumpkin-bench/v1\""));
        assert!(lines[1].contains("\"id\":\"a/one\""));
        assert!(lines[1].contains("\"median_ns\":"));
        assert!(lines[2].contains("\"times_ns\":["));
    }

    #[test]
    fn bench_measures_and_filters() {
        let mut b = Bench::new().sample_size(3);
        b.filter = Some("yes".into());
        assert!(b.bench_fn("no/skipped", || 1 + 1).is_none());
        let s = b.bench_fn("yes/measured", || 1 + 1).unwrap();
        assert_eq!(s.times_ns.len(), 3);
    }
}
