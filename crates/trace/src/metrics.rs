//! The counter/histogram metrics registry.
//!
//! [`Metrics`] aggregates what the event stream (or instrumented code
//! directly) observed: monotonically increasing counters and log₂-bucketed
//! nanosecond histograms. Registries derive from an event batch
//! ([`Metrics::from_events`]), merge across runs ([`Metrics::merge`]), and
//! render as an aligned text table ([`Metrics::to_text`]) or one flat JSON
//! object per entry ([`Metrics::to_json_lines`]) for the same trajectory
//! files the bench harness writes.

use std::collections::BTreeMap;
use std::fmt;

use crate::{json, Event, EventKind};

/// Number of log₂ buckets; bucket `i` holds values in `[2^i, 2^(i+1))`
/// nanoseconds, so 48 buckets span sub-nanosecond to ~78 hours.
const BUCKETS: usize = 48;

/// A log₂-bucketed histogram of nanosecond durations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Observation count.
    count: u64,
    /// Sum of observed values (for the mean).
    sum: u64,
    /// Smallest observation (u64::MAX until the first).
    min: u64,
    /// Largest observation.
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        // 0 and 1 land in bucket 0; otherwise floor(log2(value)).
        (63 - value.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate quantile (`q` in `[0, 1]`): the geometric midpoint of
    /// the bucket containing the `q`-th observation. Resolution is the
    /// bucket width (a factor of 2), which is plenty for spotting orders
    /// of magnitude.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = 1u64 << i;
                // Geometric midpoint of [2^i, 2^(i+1)): 2^i * sqrt(2).
                return Some(((lo as f64) * std::f64::consts::SQRT_2) as u64);
            }
        }
        self.max()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

impl Histogram {
    /// Renders `n=… mean=… p50≈… max=…`. With `as_ns`, values are
    /// formatted as durations ([`fmt_ns`]); otherwise as plain numbers
    /// (for dimensionless histograms like `wave.width`).
    pub fn summary(&self, as_ns: bool) -> String {
        if self.count == 0 {
            return "(empty)".to_string();
        }
        let val = |v: u64| if as_ns { fmt_ns(v) } else { v.to_string() };
        format!(
            "n={} mean={} p50≈{} max={}",
            self.count,
            val(self.mean().unwrap_or(0.0) as u64),
            val(self.quantile(0.5).unwrap_or(0)),
            val(self.max),
        )
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary(true))
    }
}

/// Renders nanoseconds with a human unit (ns / µs / ms / s).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// A registry of named counters and histograms.
///
/// Names are dotted paths (`cache.whnf.hits`, `lift.constant.ns`); the
/// `.ns` suffix marks histograms of nanosecond durations by convention.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &str, by: u64) {
        if by > 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += by;
        }
    }

    /// Records `value_ns` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, value_ns: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value_ns);
    }

    /// The counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Is the registry entirely empty?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one (counters add, histograms
    /// merge).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// The standard derivation from an event batch: event-kind counters
    /// (`events.whnf`, `cache.conv.hits`, …) and span-duration histograms
    /// (`lift.constant.ns`, `wave.ns`, `wave.merge.ns`, `run.ns`).
    pub fn from_events(events: &[Event]) -> Metrics {
        let mut m = Metrics::new();
        m.incr("events.total", events.len() as u64);
        for e in events {
            match &e.kind {
                EventKind::Run { .. } => m.observe("run.ns", e.dur_ns),
                EventKind::WaveStart { .. } => {}
                EventKind::Wave { width, .. } => {
                    m.incr("schedule.waves", 1);
                    m.observe("wave.ns", e.dur_ns);
                    m.observe("wave.width", u64::from(*width));
                }
                EventKind::WaveMerge { .. } => m.observe("wave.merge.ns", e.dur_ns),
                EventKind::LiftConstant { .. } => {
                    m.incr("lift.constants", 1);
                    m.observe("lift.constant.ns", e.dur_ns);
                }
                EventKind::Whnf => m.incr("events.whnf", 1),
                EventKind::Conv => m.incr("events.conv", 1),
                EventKind::CacheHit { table } => {
                    m.incr(&format!("cache.{table}.hits"), 1);
                }
                EventKind::CacheMiss { table } => {
                    m.incr(&format!("cache.{table}.misses"), 1);
                }
                EventKind::Rollback { dropped } => {
                    m.incr("rollback.count", 1);
                    m.incr("rollback.dropped", u64::from(*dropped));
                }
                EventKind::Incr {
                    changed,
                    replayed,
                    skipped,
                } => {
                    m.incr("incr.changed", *changed);
                    m.incr("incr.replayed", *replayed);
                    m.incr("incr.skipped", *skipped);
                }
                EventKind::ServeSlow {
                    method,
                    queue_wait_ns,
                    service_ns,
                    ..
                } => {
                    m.incr("serve.slow", 1);
                    m.incr(&format!("serve.slow.{method}"), 1);
                    m.observe("serve.slow.queue_wait.ns", *queue_wait_ns);
                    m.observe("serve.slow.service.ns", *service_ns);
                }
                EventKind::AutoCandidate { .. } => m.incr("auto.candidates", 1),
                EventKind::AutoVerdict { verdict, .. } => {
                    m.incr(&format!("auto.verdict.{verdict}"), 1);
                    m.observe("auto.candidate.ns", e.dur_ns);
                }
                EventKind::ProvConst { .. } => m.incr("prov.constants", 1),
                EventKind::ProvSite { rule, .. } => {
                    m.incr("prov.sites", 1);
                    m.incr(&format!("prov.rule.{rule}"), 1);
                }
                EventKind::Unknown { .. } => m.incr("events.unknown", 1),
            }
        }
        m
    }

    /// Folds the registry into a job-count-invariant canonical form.
    ///
    /// Kernel cache probe counts (`cache.*`, `events.whnf`, `events.conv`)
    /// legitimately vary with the worker count: each worker forks its own
    /// memo tables, so hit/miss patterns — and the recursion they prune —
    /// differ run to run (see `semantic_events_agree_across_worker_counts`
    /// in the integration tests). The same goes for timing histograms and
    /// for provenance *site* counts (a worker that misses the lift cache
    /// re-expands a subtree's sites; `rule.cached` absorbs the difference).
    ///
    /// Canonicalization keeps the semantic counters verbatim
    /// (`schedule.waves`, `lift.constants`, `prov.constants`,
    /// `rollback.*`) plus the dimensionless `wave.width` histogram, and
    /// folds each job-variant family into a presence flag:
    /// `cache.<table>.used`, `kernel.whnf.used`, `kernel.conv.used`,
    /// `prov.recorded` (1 when any probe of that family fired). Two runs
    /// of the same repair at different `--jobs` canonicalize identically.
    pub fn canonicalize(&self) -> Metrics {
        let mut m = Metrics::new();
        for (k, &v) in &self.counters {
            if k == "schedule.waves"
                || k == "lift.constants"
                || k == "prov.constants"
                || k == "events.unknown"
                || k.starts_with("rollback.")
            {
                m.incr(k, v);
            }
        }
        for table in ["whnf", "conv", "lift"] {
            if self.counter(&format!("cache.{table}.hits"))
                + self.counter(&format!("cache.{table}.misses"))
                > 0
            {
                m.incr(&format!("cache.{table}.used"), 1);
            }
        }
        if self.counter("events.whnf") > 0 {
            m.incr("kernel.whnf.used", 1);
        }
        if self.counter("events.conv") > 0 {
            m.incr("kernel.conv.used", 1);
        }
        if self.counter("prov.sites") > 0 {
            m.incr("prov.recorded", 1);
        }
        if let Some(h) = self.histogram("wave.width") {
            m.histograms.insert("wave.width".to_string(), h.clone());
        }
        m
    }

    /// Renders an aligned, name-ordered text table (counters first, then
    /// histogram summaries).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("{k:<width$}  {}\n", h.summary(k.ends_with(".ns"))));
        }
        out
    }

    /// Renders the registry as JSON lines: one flat object per entry,
    /// `{"metric":NAME,"type":"counter","value":N}` or
    /// `{"metric":NAME,"type":"histogram","count":…,"sum_ns":…,"min_ns":…,
    /// "max_ns":…,"p50_ns":…}`.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!(
                "{{\"metric\":{},\"type\":\"counter\",\"value\":{v}}}\n",
                json::escape(k)
            ));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{{\"metric\":{},\"type\":\"histogram\",\"count\":{},\"sum_ns\":{},\
                 \"min_ns\":{},\"max_ns\":{},\"p50_ns\":{}}}\n",
                json::escape(k),
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.quantile(0.5).unwrap_or(0),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheTable;

    #[test]
    fn histogram_tracks_extremes_and_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        for v in [100, 200, 400, 800, 100_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(100));
        assert_eq!(h.max(), Some(100_000));
        let p50 = h.quantile(0.5).unwrap();
        // Bucket resolution: the median (400) is within its power-of-two
        // bucket [256, 512).
        assert!((256..512).contains(&p50), "p50 {p50}");
        assert!(h.quantile(1.0).unwrap() >= p50);
    }

    #[test]
    fn histogram_merge_equals_combined_observations() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [10, 20, 30] {
            a.observe(v);
            both.observe(v);
        }
        for v in [1000, 2000] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn from_events_derives_standard_names() {
        let ev = |kind: EventKind, dur: u64| Event {
            t_ns: 0,
            dur_ns: dur,
            worker: 0,
            kind,
        };
        let events = vec![
            ev(EventKind::Whnf, 0),
            ev(EventKind::Whnf, 0),
            ev(
                EventKind::CacheHit {
                    table: CacheTable::Whnf,
                },
                0,
            ),
            ev(
                EventKind::CacheMiss {
                    table: CacheTable::Lift,
                },
                0,
            ),
            ev(
                EventKind::LiftConstant {
                    name: "Old.rev".into(),
                },
                5_000,
            ),
            ev(EventKind::Wave { wave: 0, width: 3 }, 9_000),
            ev(EventKind::Run { jobs: 2 }, 20_000),
        ];
        let m = Metrics::from_events(&events);
        assert_eq!(m.counter("events.whnf"), 2);
        assert_eq!(m.counter("cache.whnf.hits"), 1);
        assert_eq!(m.counter("cache.lift.misses"), 1);
        assert_eq!(m.counter("lift.constants"), 1);
        assert_eq!(m.counter("schedule.waves"), 1);
        assert_eq!(m.histogram("lift.constant.ns").unwrap().sum(), 5_000);
        assert_eq!(m.histogram("run.ns").unwrap().count(), 1);
    }

    #[test]
    fn text_and_json_renderings_cover_all_entries() {
        let mut m = Metrics::new();
        m.incr("a.count", 3);
        m.observe("b.ns", 1234);
        let text = m.to_text();
        assert!(text.contains("a.count"));
        assert!(text.contains("b.ns"));
        for line in m.to_json_lines().lines() {
            let obj = json::parse_flat(line).expect("metric lines are valid flat JSON");
            assert!(obj.contains_key("metric"));
        }
    }

    #[test]
    fn canonicalize_folds_job_variant_counters_into_presence_flags() {
        let mut fast = Metrics::new(); // e.g. jobs=1: warm shared caches
        let mut slow = Metrics::new(); // e.g. jobs=4: forked per-worker caches
        for m in [&mut fast, &mut slow] {
            m.incr("schedule.waves", 4);
            m.incr("lift.constants", 18);
            m.incr("prov.constants", 18);
            m.observe("wave.width", 6);
        }
        fast.incr("cache.whnf.hits", 900);
        fast.incr("cache.whnf.misses", 100);
        fast.incr("events.whnf", 100);
        fast.incr("prov.sites", 40);
        fast.incr("prov.rule.dep_constr", 30);
        fast.incr("prov.rule.cached", 10);
        fast.observe("run.ns", 1_000_000);
        slow.incr("cache.whnf.hits", 600);
        slow.incr("cache.whnf.misses", 400);
        slow.incr("events.whnf", 400);
        slow.incr("prov.sites", 55);
        slow.incr("prov.rule.dep_constr", 30);
        slow.incr("prov.rule.cached", 25);
        slow.observe("run.ns", 700_000);

        assert_ne!(fast, slow);
        let (a, b) = (fast.canonicalize(), slow.canonicalize());
        assert_eq!(a, b, "canonical forms are job-count-invariant");
        assert_eq!(a.counter("lift.constants"), 18);
        assert_eq!(a.counter("cache.whnf.used"), 1);
        assert_eq!(a.counter("kernel.whnf.used"), 1);
        assert_eq!(a.counter("prov.recorded"), 1);
        assert_eq!(a.counter("cache.conv.used"), 0);
        assert!(a.histogram("run.ns").is_none(), "timings dropped");
        assert_eq!(a.histogram("wave.width").unwrap().count(), 1);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Metrics::new();
        a.incr("x", 1);
        let mut b = Metrics::new();
        b.incr("x", 2);
        b.incr("y", 5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 5);
    }
}
