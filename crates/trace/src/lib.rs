//! # pumpkin-trace
//!
//! Zero-dependency structured tracing and metrics for the repair pipeline.
//!
//! The paper's artifact reports one wall-clock number per case study; a
//! production repair service needs to answer *where the time went* — per
//! wave, per worker, per constant, per kernel cache probe — without
//! perturbing the hot path it measures. This crate supplies that substrate
//! under the same no-external-crates discipline as the rest of the
//! workspace:
//!
//! * [`Event`] / [`EventKind`] — the typed event taxonomy (run/wave/merge
//!   spans, per-constant lift spans, `whnf`/`conv` calls, cache hit/miss
//!   probes, rollbacks), each stamped with a monotonic nanosecond offset
//!   and a worker id.
//! * [`Tracer`] — a thread-confined event buffer. A disabled tracer is a
//!   single `Option` discriminant check per probe (no allocation, no
//!   timestamp read), so instrumented code pays effectively nothing when
//!   observability is off. Parallel workers get forked tracers
//!   ([`Tracer::fork_worker`]) sharing the run's epoch; their buffers are
//!   merged back at wave barriers ([`Tracer::absorb`]) — no locks anywhere.
//! * [`sink`] — the [`sink::EventSink`] output trait with two built-ins: a
//!   hand-rolled JSON-lines writer ([`sink::JsonLinesSink`], schema in
//!   DESIGN.md §11) and a flamegraph-style text summariser
//!   ([`sink::SummarySink`] / [`summary::render`]).
//! * [`metrics`] — a counter/histogram registry ([`metrics::Metrics`]),
//!   derivable from an event stream and mergeable across runs.
//! * [`json`] — the minimal JSON encode/parse helpers backing the sink and
//!   the golden-file round-trip tests.
//! * [`prov`] — the versioned `prov` event family: per-subterm attribution
//!   of every rewrite to the configuration rule that fired (paper §4).
//! * [`report`] — offline trace analysis (`pumpkin trace-report`):
//!   critical-path extraction, hottest lifts, per-constant cache
//!   behaviour, structural diff of two traces, schema lint.

pub mod json;
pub mod metrics;
pub mod prov;
pub mod report;
pub mod serve_stats;
pub mod sink;
pub mod summary;

use std::cell::{Cell, RefCell};
use std::fmt;
use std::time::Instant;

pub use metrics::{Histogram, Metrics};
pub use sink::{EventSink, JsonLinesSink, SummarySink};

/// Version stamp carried by the `auto_candidate`/`auto_verdict` event
/// family (like [`prov::PROV_SCHEMA_VERSION`] for the `prov` family);
/// readers treat other versions as [`EventKind::Unknown`].
pub const AUTO_SCHEMA_VERSION: u32 = 1;

/// Which memo table a cache probe hit ([`EventKind::CacheHit`] /
/// [`EventKind::CacheMiss`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheTable {
    /// The kernel's weak-head-normal-form memo table.
    Whnf,
    /// The kernel's conversion-verdict memo table.
    Conv,
    /// The lift layer's closed-subterm cache (paper §4.4).
    Lift,
}

impl CacheTable {
    /// The stable wire name used in the JSON-lines schema.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheTable::Whnf => "whnf",
            CacheTable::Conv => "conv",
            CacheTable::Lift => "lift",
        }
    }

    /// Parses a wire name back ([`CacheTable::as_str`]'s inverse).
    pub fn from_str_opt(s: &str) -> Option<CacheTable> {
        match s {
            "whnf" => Some(CacheTable::Whnf),
            "conv" => Some(CacheTable::Conv),
            "lift" => Some(CacheTable::Lift),
            _ => None,
        }
    }
}

impl fmt::Display for CacheTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The typed event taxonomy. Span-shaped kinds (run, wave, merge, lift)
/// carry their duration on the enclosing [`Event`]; instant kinds have
/// `dur_ns == 0`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Span over one whole repair run (the `Repairer` front door).
    Run {
        /// Worker cap the run was configured with.
        jobs: u32,
    },
    /// Instant marker at the start of a scheduler wave.
    WaveStart {
        /// Wave index, starting at 0.
        wave: u32,
        /// Constants in the wave.
        width: u32,
    },
    /// Span over a whole scheduler wave (workers + merge barrier).
    Wave {
        /// Wave index, starting at 0.
        wave: u32,
        /// Constants in the wave.
        width: u32,
    },
    /// Span over a wave's merge barrier (admitting worker deltas and
    /// folding caches back into the master).
    WaveMerge {
        /// Wave index, starting at 0.
        wave: u32,
    },
    /// Span over the repair of one constant (nested spans mark on-demand
    /// dependency repairs).
    LiftConstant {
        /// The source constant being repaired.
        name: Box<str>,
    },
    /// Instant: one non-trivial weak-head-normalisation call.
    Whnf,
    /// Instant: one non-trivial conversion call.
    Conv,
    /// Instant: a memo-table probe answered from the cache.
    CacheHit {
        /// Which table answered.
        table: CacheTable,
    },
    /// Instant: a memo-table probe that missed.
    CacheMiss {
        /// Which table missed.
        table: CacheTable,
    },
    /// Instant: a failing wave's declarations were rolled back.
    Rollback {
        /// Declarations dropped.
        dropped: u32,
    },
    /// Instant: incremental accounting for a differential run — how many
    /// work-list inputs changed since the digest snapshot, how many
    /// constants were re-lifted fresh, and how many were skipped
    /// (persist-cache replays or already-mapped constants).
    Incr {
        /// Inputs whose source digest changed.
        changed: u64,
        /// Constants re-lifted fresh (the invalidated closure).
        replayed: u64,
        /// Constants not re-lifted.
        skipped: u64,
    },
    /// Instant (`serve_*` family): one daemon request that exceeded the
    /// `--slow-ms` threshold, with its lifecycle breakdown. `t_ns` is the
    /// offset of the frame's arrival since the daemon's epoch and `dur_ns`
    /// is the full accept-to-reply-write wall time; the payload splits it.
    ServeSlow {
        /// The request id echoed to the client as `req_id`.
        req_id: u64,
        /// The RPC method name.
        method: Box<str>,
        /// Nanoseconds spent queued between enqueue and worker pickup.
        queue_wait_ns: u64,
        /// Nanoseconds inside the session handling the request.
        service_ns: u64,
        /// Nanoseconds writing the reply frame back to the socket.
        write_ns: u64,
    },
    /// Instant (`prov` family, versioned): header for one repaired
    /// constant's provenance tree; followed by `sites` [`EventKind::ProvSite`]
    /// events.
    ProvConst {
        /// The source constant.
        name: Box<str>,
        /// Its repaired name.
        to: Box<str>,
        /// How many `prov_site` events follow for this constant.
        sites: u32,
    },
    /// Instant (`prov` family, versioned): one rewrite site inside a
    /// repaired constant — at `path`, `rule` rewrote `src` into `dst`.
    ProvSite {
        /// The source constant this site belongs to.
        constant: Box<str>,
        /// Dotted canonical subterm path (`""` = declaration root; see
        /// [`prov`] module docs).
        path: Box<str>,
        /// The configuration rule that fired.
        rule: prov::Rule,
        /// Pretty-printed (truncated) source subterm.
        src: Box<str>,
        /// Pretty-printed (truncated) produced subterm.
        dst: Box<str>,
    },
    /// Instant (`auto` family, versioned): the automatic repair search is
    /// about to run one candidate configuration through the kernel oracle.
    AutoCandidate {
        /// Candidate index in enumeration (ranked) order, starting at 0.
        index: u32,
        /// Human-readable candidate description (mapping + toggles).
        config: Box<str>,
    },
    /// Instant (`auto` family, versioned): the oracle's verdict on one
    /// candidate — `accepted`, `rejected`, or `skipped_cache`.
    AutoVerdict {
        /// Candidate index, matching the preceding [`EventKind::AutoCandidate`].
        index: u32,
        /// `accepted`, `rejected`, or `skipped_cache`.
        verdict: Box<str>,
        /// The failure's error class; empty for accepted candidates.
        class: Box<str>,
    },
    /// A schema-valid line whose `kind` (or `prov`/`auto` schema version)
    /// this reader does not know. The raw line is preserved verbatim so
    /// re-serialising a trace written by a newer producer is lossless.
    Unknown {
        /// The wire `kind` string we did not recognise.
        kind: Box<str>,
        /// The original line, byte for byte.
        raw: Box<str>,
    },
}

impl EventKind {
    /// The stable wire name used in the JSON-lines schema.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Run { .. } => "run",
            EventKind::WaveStart { .. } => "wave_start",
            EventKind::Wave { .. } => "wave",
            EventKind::WaveMerge { .. } => "wave_merge",
            EventKind::LiftConstant { .. } => "lift_constant",
            EventKind::Whnf => "whnf",
            EventKind::Conv => "conv",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::Rollback { .. } => "rollback",
            EventKind::Incr { .. } => "incr",
            EventKind::ServeSlow { .. } => "serve_slow",
            EventKind::ProvConst { .. } => "prov_const",
            EventKind::ProvSite { .. } => "prov_site",
            EventKind::AutoCandidate { .. } => "auto_candidate",
            EventKind::AutoVerdict { .. } => "auto_verdict",
            // The preserved wire kind lives in the variant's `kind` field;
            // this is the reader-side taxonomy name.
            EventKind::Unknown { .. } => "unknown",
        }
    }
}

/// One trace event: a typed kind, a monotonic start offset in nanoseconds
/// since the run's epoch, a duration (0 for instants), and the id of the
/// worker whose thread-confined buffer recorded it (0 = the master).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// Start offset, nanoseconds since the tracer's epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds; 0 for instant events.
    pub dur_ns: u64,
    /// Recording worker (0 = master; workers are numbered from 1 per wave).
    pub worker: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serialises the event as one JSON object (no trailing newline),
    /// following the schema documented in DESIGN.md §11. Key order is
    /// stable: `t_ns`, `dur_ns`, `worker`, `kind`, then kind-specific
    /// fields. [`EventKind::Unknown`] events re-serialise as their
    /// preserved raw line, byte for byte.
    pub fn to_json(&self) -> String {
        if let EventKind::Unknown { raw, .. } = &self.kind {
            return raw.to_string();
        }
        let mut s = String::with_capacity(96);
        s.push_str("{\"t_ns\":");
        s.push_str(&self.t_ns.to_string());
        s.push_str(",\"dur_ns\":");
        s.push_str(&self.dur_ns.to_string());
        s.push_str(",\"worker\":");
        s.push_str(&self.worker.to_string());
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.as_str());
        s.push('"');
        match &self.kind {
            EventKind::Run { jobs } => {
                s.push_str(",\"jobs\":");
                s.push_str(&jobs.to_string());
            }
            EventKind::WaveStart { wave, width } | EventKind::Wave { wave, width } => {
                s.push_str(",\"wave\":");
                s.push_str(&wave.to_string());
                s.push_str(",\"width\":");
                s.push_str(&width.to_string());
            }
            EventKind::WaveMerge { wave } => {
                s.push_str(",\"wave\":");
                s.push_str(&wave.to_string());
            }
            EventKind::LiftConstant { name } => {
                s.push_str(",\"name\":");
                json::escape_into(name, &mut s);
            }
            EventKind::CacheHit { table } | EventKind::CacheMiss { table } => {
                s.push_str(",\"table\":\"");
                s.push_str(table.as_str());
                s.push('"');
            }
            EventKind::Rollback { dropped } => {
                s.push_str(",\"dropped\":");
                s.push_str(&dropped.to_string());
            }
            EventKind::Incr {
                changed,
                replayed,
                skipped,
            } => {
                s.push_str(",\"changed\":");
                s.push_str(&changed.to_string());
                s.push_str(",\"replayed\":");
                s.push_str(&replayed.to_string());
                s.push_str(",\"skipped\":");
                s.push_str(&skipped.to_string());
            }
            EventKind::ServeSlow {
                req_id,
                method,
                queue_wait_ns,
                service_ns,
                write_ns,
            } => {
                s.push_str(",\"req_id\":");
                s.push_str(&req_id.to_string());
                s.push_str(",\"method\":");
                json::escape_into(method, &mut s);
                s.push_str(",\"queue_wait_ns\":");
                s.push_str(&queue_wait_ns.to_string());
                s.push_str(",\"service_ns\":");
                s.push_str(&service_ns.to_string());
                s.push_str(",\"write_ns\":");
                s.push_str(&write_ns.to_string());
            }
            EventKind::ProvConst { name, to, sites } => {
                s.push_str(",\"v\":");
                s.push_str(&prov::PROV_SCHEMA_VERSION.to_string());
                s.push_str(",\"name\":");
                json::escape_into(name, &mut s);
                s.push_str(",\"to\":");
                json::escape_into(to, &mut s);
                s.push_str(",\"sites\":");
                s.push_str(&sites.to_string());
            }
            EventKind::ProvSite {
                constant,
                path,
                rule,
                src,
                dst,
            } => {
                s.push_str(",\"v\":");
                s.push_str(&prov::PROV_SCHEMA_VERSION.to_string());
                s.push_str(",\"const\":");
                json::escape_into(constant, &mut s);
                s.push_str(",\"path\":");
                json::escape_into(path, &mut s);
                s.push_str(",\"rule\":\"");
                s.push_str(rule.as_str());
                s.push('"');
                s.push_str(",\"src\":");
                json::escape_into(src, &mut s);
                s.push_str(",\"dst\":");
                json::escape_into(dst, &mut s);
            }
            EventKind::AutoCandidate { index, config } => {
                s.push_str(",\"v\":");
                s.push_str(&AUTO_SCHEMA_VERSION.to_string());
                s.push_str(",\"index\":");
                s.push_str(&index.to_string());
                s.push_str(",\"config\":");
                json::escape_into(config, &mut s);
            }
            EventKind::AutoVerdict {
                index,
                verdict,
                class,
            } => {
                s.push_str(",\"v\":");
                s.push_str(&AUTO_SCHEMA_VERSION.to_string());
                s.push_str(",\"index\":");
                s.push_str(&index.to_string());
                s.push_str(",\"verdict\":");
                json::escape_into(verdict, &mut s);
                s.push_str(",\"class\":");
                json::escape_into(class, &mut s);
            }
            EventKind::Whnf | EventKind::Conv => {}
            EventKind::Unknown { .. } => unreachable!("handled above"),
        }
        s.push('}');
        s
    }

    /// Parses one JSON line produced by [`Event::to_json`] (or any flat
    /// JSON object with the same fields, in any key order). Returns `None`
    /// only on malformed input (bad JSON, missing base fields, or a known
    /// kind with broken payload); a structurally valid line with an
    /// *unrecognised* `kind` — or a `prov` event from a newer schema
    /// version — parses to [`EventKind::Unknown`], preserving the raw line
    /// so forward-compatible round-trips are lossless.
    pub fn from_json(line: &str) -> Option<Event> {
        let obj = json::parse_flat(line)?;
        let num = |k: &str| -> Option<u64> { obj.get(k)?.as_u64() };
        let st = |k: &str| -> Option<&str> { obj.get(k)?.as_str() };
        let unknown = |kind: &str| EventKind::Unknown {
            kind: kind.into(),
            raw: line.into(),
        };
        let kind = match st("kind")? {
            "run" => EventKind::Run {
                jobs: num("jobs")? as u32,
            },
            "wave_start" => EventKind::WaveStart {
                wave: num("wave")? as u32,
                width: num("width")? as u32,
            },
            "wave" => EventKind::Wave {
                wave: num("wave")? as u32,
                width: num("width")? as u32,
            },
            "wave_merge" => EventKind::WaveMerge {
                wave: num("wave")? as u32,
            },
            "lift_constant" => EventKind::LiftConstant {
                name: st("name")?.into(),
            },
            "whnf" => EventKind::Whnf,
            "conv" => EventKind::Conv,
            "cache_hit" => EventKind::CacheHit {
                table: CacheTable::from_str_opt(st("table")?)?,
            },
            "cache_miss" => EventKind::CacheMiss {
                table: CacheTable::from_str_opt(st("table")?)?,
            },
            "rollback" => EventKind::Rollback {
                dropped: num("dropped")? as u32,
            },
            "incr" => EventKind::Incr {
                changed: num("changed")?,
                replayed: num("replayed")?,
                skipped: num("skipped")?,
            },
            "serve_slow" => EventKind::ServeSlow {
                req_id: num("req_id")?,
                method: st("method")?.into(),
                queue_wait_ns: num("queue_wait_ns")?,
                service_ns: num("service_ns")?,
                write_ns: num("write_ns")?,
            },
            k @ ("prov_const" | "prov_site")
                if num("v") != Some(u64::from(prov::PROV_SCHEMA_VERSION)) =>
            {
                // A future (or missing) prov schema version: preserve, don't
                // guess at field meanings.
                unknown(k)
            }
            "prov_const" => EventKind::ProvConst {
                name: st("name")?.into(),
                to: st("to")?.into(),
                sites: num("sites")? as u32,
            },
            "prov_site" => EventKind::ProvSite {
                constant: st("const")?.into(),
                path: st("path")?.into(),
                rule: prov::Rule::from_str_opt(st("rule")?)?,
                src: st("src")?.into(),
                dst: st("dst")?.into(),
            },
            k @ ("auto_candidate" | "auto_verdict")
                if num("v") != Some(u64::from(AUTO_SCHEMA_VERSION)) =>
            {
                // A future (or missing) auto schema version: preserve, don't
                // guess at field meanings.
                unknown(k)
            }
            "auto_candidate" => EventKind::AutoCandidate {
                index: num("index")? as u32,
                config: st("config")?.into(),
            },
            "auto_verdict" => EventKind::AutoVerdict {
                index: num("index")? as u32,
                verdict: st("verdict")?.into(),
                class: st("class")?.into(),
            },
            k => unknown(k),
        };
        Some(Event {
            t_ns: num("t_ns")?,
            dur_ns: num("dur_ns")?,
            worker: num("worker")? as u32,
            kind,
        })
    }
}

/// An in-flight span handle from [`Tracer::begin`]; close it with
/// [`Tracer::end`]. Carries the start offset (`None` when the tracer is
/// disabled, making the whole begin/end pair free).
#[derive(Clone, Copy, Debug)]
#[must_use = "close the span with Tracer::end"]
pub struct SpanStart(Option<u64>);

#[derive(Debug)]
struct TracerInner {
    /// The run's shared monotonic epoch; forked workers keep it so event
    /// timestamps are comparable across threads.
    epoch: Instant,
    /// This buffer's worker id (0 = master).
    worker: u32,
    /// While paused, probes are dropped (used to hide debug-only
    /// re-typechecking from the event stream so debug and release traces
    /// agree).
    paused: Cell<bool>,
    /// The thread-confined event buffer.
    buf: RefCell<Vec<Event>>,
}

/// A thread-confined trace event buffer.
///
/// A `Tracer` is either *disabled* (the [`Default`], a single `None` — every
/// probe is one branch, no timestamp read, no allocation) or *enabled*
/// (owns an epoch and an event buffer). It deliberately has no
/// synchronisation: each tracer belongs to one thread, mirroring the
/// kernel `Env` cache-confinement rule. Cross-thread aggregation is
/// explicit — fork with [`Tracer::fork_worker`], move the fork onto the
/// worker thread, ship the events back as plain data, and fold them in
/// with [`Tracer::absorb`] at the barrier.
///
/// Cloning an enabled tracer yields an enabled tracer with the same epoch,
/// worker id, and pause state but an **empty** buffer: events belong to
/// the buffer that recorded them, never to copies (this is what makes
/// `Env::clone` snapshots for workers trace-safe by default).
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Option<Box<TracerInner>>,
}

impl Clone for Tracer {
    fn clone(&self) -> Self {
        match &self.inner {
            None => Tracer { inner: None },
            Some(i) => Tracer {
                inner: Some(Box::new(TracerInner {
                    epoch: i.epoch,
                    worker: i.worker,
                    paused: Cell::new(i.paused.get()),
                    buf: RefCell::new(Vec::new()),
                })),
            },
        }
    }
}

impl Tracer {
    /// An enabled tracer for the master (worker 0) with a fresh epoch.
    pub fn new() -> Tracer {
        Tracer {
            inner: Some(Box::new(TracerInner {
                epoch: Instant::now(),
                worker: 0,
                paused: Cell::new(false),
                buf: RefCell::new(Vec::new()),
            })),
        }
    }

    /// A disabled tracer: every operation is a no-op costing one branch.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Is this tracer recording?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh, empty tracer for a parallel worker: shares this tracer's
    /// epoch (so timestamps are comparable) but records under `worker`.
    /// Disabled tracers fork disabled tracers.
    pub fn fork_worker(&self, worker: u32) -> Tracer {
        match &self.inner {
            None => Tracer { inner: None },
            Some(i) => Tracer {
                inner: Some(Box::new(TracerInner {
                    epoch: i.epoch,
                    worker,
                    paused: Cell::new(false),
                    buf: RefCell::new(Vec::new()),
                })),
            },
        }
    }

    /// Pauses or resumes recording. Paused probes are dropped entirely;
    /// used to keep debug-only re-typechecking (e.g. `Env::admit_checked`'s
    /// debug re-check) out of the stream so debug and release traces are
    /// identical.
    pub fn pause(&self, paused: bool) {
        if let Some(i) = &self.inner {
            i.paused.set(paused);
        }
    }

    /// Nanoseconds since this tracer's epoch (0 when disabled).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(i) => i.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Records an instant event.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        let Some(i) = &self.inner else { return };
        if i.paused.get() {
            return;
        }
        let t_ns = i.epoch.elapsed().as_nanos() as u64;
        i.buf.borrow_mut().push(Event {
            t_ns,
            dur_ns: 0,
            worker: i.worker,
            kind,
        });
    }

    /// Opens a span: captures the start timestamp (or nothing when
    /// disabled). Close it with [`Tracer::end`].
    #[inline]
    pub fn begin(&self) -> SpanStart {
        match &self.inner {
            None => SpanStart(None),
            Some(i) => {
                if i.paused.get() {
                    SpanStart(None)
                } else {
                    SpanStart(Some(i.epoch.elapsed().as_nanos() as u64))
                }
            }
        }
    }

    /// Closes a span opened by [`Tracer::begin`], recording one event whose
    /// `t_ns` is the span's start and whose `dur_ns` is the elapsed time.
    #[inline]
    pub fn end(&self, span: SpanStart, kind: EventKind) {
        let (Some(i), Some(start)) = (&self.inner, span.0) else {
            return;
        };
        if i.paused.get() {
            return;
        }
        let now = i.epoch.elapsed().as_nanos() as u64;
        i.buf.borrow_mut().push(Event {
            t_ns: start,
            dur_ns: now.saturating_sub(start),
            worker: i.worker,
            kind,
        });
    }

    /// Folds a batch of events (a worker's shipped buffer) into this
    /// tracer, preserving their timestamps and worker ids. No-op when
    /// disabled.
    pub fn absorb(&self, events: Vec<Event>) {
        if let Some(i) = &self.inner {
            i.buf.borrow_mut().extend(events);
        }
    }

    /// Takes the recorded events out, leaving the buffer empty.
    pub fn drain(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(i) => std::mem::take(&mut i.buf.borrow_mut()),
        }
    }

    /// Consumes the tracer, returning its events.
    pub fn into_events(self) -> Vec<Event> {
        self.drain()
    }

    /// Number of buffered events (0 when disabled).
    pub fn len(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(i) => i.buf.borrow().len(),
        }
    }

    /// Is the buffer empty (always true when disabled)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.emit(EventKind::Whnf);
        let sp = t.begin();
        t.end(sp, EventKind::Run { jobs: 1 });
        assert!(!t.enabled());
        assert!(t.is_empty());
    }

    #[test]
    fn spans_carry_start_and_duration() {
        let t = Tracer::new();
        let sp = t.begin();
        t.emit(EventKind::Whnf);
        t.end(
            sp,
            EventKind::LiftConstant {
                name: "Old.rev".into(),
            },
        );
        let events = t.into_events();
        assert_eq!(events.len(), 2);
        let lift = &events[1];
        assert_eq!(lift.kind.as_str(), "lift_constant");
        // The span started before the instant event inside it.
        assert!(lift.t_ns <= events[0].t_ns);
        assert!(lift.t_ns + lift.dur_ns >= events[0].t_ns);
    }

    #[test]
    fn fork_shares_epoch_and_absorb_merges() {
        let master = Tracer::new();
        master.emit(EventKind::Whnf);
        let worker = master.fork_worker(3);
        worker.emit(EventKind::Conv);
        let worker_events = worker.into_events();
        assert_eq!(worker_events[0].worker, 3);
        master.absorb(worker_events);
        let all = master.into_events();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].worker, 0);
        assert_eq!(all[1].worker, 3);
        // Shared epoch: the worker's event is not before the master's.
        assert!(all[1].t_ns >= all[0].t_ns);
    }

    #[test]
    fn clone_keeps_config_but_not_events() {
        let t = Tracer::new();
        t.emit(EventKind::Whnf);
        let c = t.clone();
        assert!(c.enabled());
        assert!(c.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pause_drops_probes() {
        let t = Tracer::new();
        t.pause(true);
        t.emit(EventKind::Whnf);
        let sp = t.begin();
        t.end(sp, EventKind::Conv);
        t.pause(false);
        t.emit(EventKind::Conv);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn every_kind_round_trips_through_json() {
        let kinds = vec![
            EventKind::Run { jobs: 4 },
            EventKind::WaveStart { wave: 0, width: 6 },
            EventKind::Wave { wave: 2, width: 1 },
            EventKind::WaveMerge { wave: 2 },
            EventKind::LiftConstant {
                name: "Old.rev_app_distr \"quoted\\\"".into(),
            },
            EventKind::Whnf,
            EventKind::Conv,
            EventKind::CacheHit {
                table: CacheTable::Whnf,
            },
            EventKind::CacheMiss {
                table: CacheTable::Lift,
            },
            EventKind::Rollback { dropped: 7 },
            EventKind::Incr {
                changed: 1,
                replayed: 2,
                skipped: 11,
            },
            EventKind::ServeSlow {
                req_id: 42,
                method: "repair_module".into(),
                queue_wait_ns: 1_000,
                service_ns: 2_000_000,
                write_ns: 50,
            },
            EventKind::ProvConst {
                name: "Old.rev".into(),
                to: "New.rev".into(),
                sites: 3,
            },
            EventKind::ProvSite {
                constant: "Old.rev".into(),
                path: "1.0.2".into(),
                rule: prov::Rule::DepConstr,
                src: "Old.cons nat".into(),
                dst: "New.cons nat".into(),
            },
            EventKind::AutoCandidate {
                index: 3,
                config: "mapping#1 eta=off smart_elim=on cache=on".into(),
            },
            EventKind::AutoVerdict {
                index: 3,
                verdict: "rejected".into(),
                class: "kernel".into(),
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let e = Event {
                t_ns: 1000 + i as u64,
                dur_ns: i as u64,
                worker: i as u32,
                kind,
            };
            let line = e.to_json();
            let back = Event::from_json(&line).unwrap_or_else(|| panic!("unparsable: {line}"));
            assert_eq!(e, back, "round trip failed for {line}");
        }
    }

    #[test]
    fn from_json_rejects_malformed_lines() {
        assert_eq!(Event::from_json(""), None);
        assert_eq!(Event::from_json("{}"), None);
        assert_eq!(Event::from_json("not json at all"), None);
        // A known kind with a broken payload is malformed, not unknown.
        assert_eq!(
            Event::from_json("{\"t_ns\":1,\"dur_ns\":0,\"worker\":0,\"kind\":\"rollback\"}"),
            None
        );
    }

    #[test]
    fn unknown_kinds_are_preserved_and_round_trip_verbatim() {
        let line = "{\"t_ns\":1,\"dur_ns\":0,\"worker\":0,\"kind\":\"nope\",\"extra\":42}";
        let e = Event::from_json(line).expect("unknown kinds parse, not reject");
        assert_eq!(e.t_ns, 1);
        match &e.kind {
            EventKind::Unknown { kind, raw } => {
                assert_eq!(&**kind, "nope");
                assert_eq!(&**raw, line);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        assert_eq!(e.to_json(), line, "raw line preserved byte for byte");
    }

    #[test]
    fn future_auto_schema_versions_parse_as_unknown() {
        let future = format!(
            "{{\"t_ns\":0,\"dur_ns\":0,\"worker\":0,\"kind\":\"auto_verdict\",\"v\":{},\
             \"index\":0,\"verdict\":\"accepted\",\"class\":\"\"}}",
            AUTO_SCHEMA_VERSION + 1
        );
        let e = Event::from_json(&future).expect("future auto events parse");
        assert!(matches!(e.kind, EventKind::Unknown { .. }));
        assert_eq!(e.to_json(), future);
    }

    #[test]
    fn future_prov_schema_versions_parse_as_unknown() {
        let future = format!(
            "{{\"t_ns\":0,\"dur_ns\":0,\"worker\":0,\"kind\":\"prov_const\",\"v\":{},\
             \"name\":\"a\",\"to\":\"b\",\"sites\":0}}",
            prov::PROV_SCHEMA_VERSION + 1
        );
        let e = Event::from_json(&future).expect("future prov events parse");
        assert!(matches!(e.kind, EventKind::Unknown { .. }));
        assert_eq!(e.to_json(), future);
    }
}
