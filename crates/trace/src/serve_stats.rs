//! Service-side observability for pumpkind: per-method latency and
//! queue-wait histograms plus daemon gauges, designed to sit on the
//! request hot path.
//!
//! The repair engine's tracing ([`crate::Tracer`]) is thread-confined and
//! per-run; a daemon needs the opposite shape — one registry shared by
//! every connection thread and worker, alive for the process, readable at
//! any moment by the `stats` RPC. [`ServeStats`] gets there lock-light:
//!
//! * **Histograms are sharded.** Recording locks one of [`SHARDS`] small
//!   mutexes chosen by the caller's lane (connection id), so concurrent
//!   connections contend only when they hash to the same shard. A
//!   [`ServeStats::snapshot`] merges the shards on the *read* side — the
//!   `stats` RPC pays the merge, not the request path. Log₂ buckets
//!   ([`Histogram`]) keep each shard entry at a fixed 48-slot footprint.
//! * **Gauges are atomics.** Counters (busy rejections, cache traffic)
//!   and level gauges (workers busy, live sessions) are plain relaxed
//!   `AtomicU64`s; the queue-depth high-water mark is a `fetch_max`.
//!
//! The snapshot renders to the versioned `stats` RPC schema
//! ([`STATS_SCHEMA`]) in `pumpkin-serve`; this module owns only the data
//! structure so it can be property-tested against exact order statistics
//! without a daemon.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::metrics::Histogram;

/// Version tag carried by the `stats` RPC reply; bump on any shape change
/// so `pumpkin top` and scrapers can fail fast on skew.
pub const STATS_SCHEMA: &str = "pumpkin-serve-stats/1";

/// Histogram shard count. Eight is comfortably above the daemon's default
/// worker count; lanes (connection ids) spread across shards modulo this.
pub const SHARDS: usize = 8;

/// Per-method request statistics: end-to-end latency (parse → reply
/// written) and time spent queued between enqueue and worker pickup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MethodStats {
    /// Accept-to-reply-write latency, nanoseconds.
    pub latency: Histogram,
    /// Queue wait, nanoseconds. Control methods answered inline never
    /// queue, so this can have a lower count than `latency`.
    pub queue_wait: Histogram,
}

impl MethodStats {
    /// Folds another method's shard into this one.
    pub fn merge(&mut self, other: &MethodStats) {
        self.latency.merge(&other.latency);
        self.queue_wait.merge(&other.queue_wait);
    }
}

/// The gauge/counter block, all relaxed atomics. Field names are the wire
/// names in the `stats` reply's `"gauges"` object.
#[derive(Debug, Default)]
pub struct Gauges {
    /// Auto-search candidate configurations run through the kernel oracle.
    pub auto_candidates_tried: AtomicU64,
    /// Auto-search candidates skipped by the process-wide failure cache.
    pub auto_failure_cache_hits: AtomicU64,
    /// High-water mark of the work queue depth (post-enqueue).
    pub queue_depth_hwm: AtomicU64,
    /// `busy` replies because the work queue was full.
    pub busy_queue_full: AtomicU64,
    /// `busy` replies because the session cap was reached.
    pub busy_session_cap: AtomicU64,
    /// Workers currently executing a job (not waiting on the queue).
    pub workers_busy: AtomicU64,
    /// Connections currently admitted (accept to close).
    pub live_sessions: AtomicU64,
    /// Session config-cache hits (configured equivalence reused).
    pub config_cache_hits: AtomicU64,
    /// Session config-cache misses (equivalence built fresh).
    pub config_cache_misses: AtomicU64,
    /// Constants replayed from the persistent lift cache.
    pub persist_hits: AtomicU64,
    /// Persist-cache probes that fell back to a fresh lift.
    pub persist_misses: AtomicU64,
    /// Incremental runs: inputs whose digest changed.
    pub incr_changed: AtomicU64,
    /// Incremental runs: constants re-lifted fresh.
    pub incr_replayed: AtomicU64,
    /// Incremental runs: constants not re-lifted.
    pub incr_skipped: AtomicU64,
    /// Requests that crossed the `--slow-ms` threshold and were logged.
    pub slow_logged: AtomicU64,
}

impl Gauges {
    /// The gauge block as (wire name, value) pairs, in stable order.
    pub fn read(&self) -> Vec<(&'static str, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("auto_candidates_tried", g(&self.auto_candidates_tried)),
            ("auto_failure_cache_hits", g(&self.auto_failure_cache_hits)),
            ("busy_queue_full", g(&self.busy_queue_full)),
            ("busy_session_cap", g(&self.busy_session_cap)),
            ("config_cache_hits", g(&self.config_cache_hits)),
            ("config_cache_misses", g(&self.config_cache_misses)),
            ("incr_changed", g(&self.incr_changed)),
            ("incr_replayed", g(&self.incr_replayed)),
            ("incr_skipped", g(&self.incr_skipped)),
            ("live_sessions", g(&self.live_sessions)),
            ("persist_hits", g(&self.persist_hits)),
            ("persist_misses", g(&self.persist_misses)),
            ("queue_depth_hwm", g(&self.queue_depth_hwm)),
            ("slow_logged", g(&self.slow_logged)),
            ("workers_busy", g(&self.workers_busy)),
        ]
    }
}

/// One histogram shard: method name → stats, behind its own mutex.
#[derive(Debug, Default)]
struct Shard {
    methods: Mutex<BTreeMap<String, MethodStats>>,
}

/// A point-in-time merge of every shard, plus the gauge block.
#[derive(Clone, Debug, Default)]
pub struct StatsSnapshot {
    /// Per-method histograms, merged across shards, name-ordered.
    pub methods: BTreeMap<String, MethodStats>,
    /// Gauge (wire name, value) pairs, stable order.
    pub gauges: Vec<(&'static str, u64)>,
}

impl StatsSnapshot {
    /// A named gauge's value (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// The daemon-wide stats registry. One per server process, shared by
/// `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct ServeStats {
    shards: [Shard; SHARDS],
    /// The gauge/counter block.
    pub gauges: Gauges,
}

impl ServeStats {
    /// A fresh registry with empty histograms and zeroed gauges.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// Records one completed request: `lane` picks the shard (pass the
    /// connection id — stable per connection, spread across connections),
    /// `latency_ns` is the parse-to-reply-write wall time, and
    /// `queue_wait_ns` is `Some` only for requests that went through the
    /// work queue (control methods answered inline pass `None`).
    pub fn record(&self, lane: u64, method: &str, latency_ns: u64, queue_wait_ns: Option<u64>) {
        let shard = &self.shards[(lane % SHARDS as u64) as usize];
        let mut methods = shard.methods.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = methods.entry(method.to_string()).or_default();
        entry.latency.observe(latency_ns);
        if let Some(wait) = queue_wait_ns {
            entry.queue_wait.observe(wait);
        }
    }

    /// Raises the queue-depth high-water mark to `depth` if higher.
    pub fn raise_queue_depth(&self, depth: u64) {
        self.gauges
            .queue_depth_hwm
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Merges every shard and reads every gauge. This is the read-side
    /// cost center; request recording never pays it.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut methods: BTreeMap<String, MethodStats> = BTreeMap::new();
        for shard in &self.shards {
            let locked = shard.methods.lock().unwrap_or_else(PoisonError::into_inner);
            for (name, stats) in locked.iter() {
                methods.entry(name.clone()).or_default().merge(stats);
            }
        }
        StatsSnapshot {
            methods,
            gauges: self.gauges.read(),
        }
    }
}

/// Bumps a relaxed counter by 1 (the idiom for every counter in
/// [`Gauges`]; level gauges pair it with [`dec`]).
pub fn inc(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Adds `by` to a relaxed counter.
pub fn add(counter: &AtomicU64, by: u64) {
    if by > 0 {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// Decrements a relaxed level gauge, saturating at zero.
pub fn dec(counter: &AtomicU64) {
    // fetch_update never fails with a Some-returning closure.
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(1))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_round_trip() {
        let stats = ServeStats::new();
        stats.record(0, "repair", 1_000, Some(100));
        stats.record(1, "repair", 2_000, Some(200));
        stats.record(2, "ping", 500, None);
        inc(&stats.gauges.busy_queue_full);
        stats.raise_queue_depth(7);
        stats.raise_queue_depth(3); // lower: must not regress the HWM

        let snap = stats.snapshot();
        let repair = &snap.methods["repair"];
        assert_eq!(repair.latency.count(), 2);
        assert_eq!(repair.queue_wait.count(), 2);
        let ping = &snap.methods["ping"];
        assert_eq!(ping.latency.count(), 1);
        assert_eq!(ping.queue_wait.count(), 0, "inline methods never queue");
        assert_eq!(snap.gauge("busy_queue_full"), 1);
        assert_eq!(snap.gauge("queue_depth_hwm"), 7);
        assert_eq!(snap.gauge("busy_session_cap"), 0);
    }

    #[test]
    fn level_gauges_saturate_at_zero() {
        let g = Gauges::default();
        inc(&g.workers_busy);
        dec(&g.workers_busy);
        dec(&g.workers_busy);
        assert_eq!(g.workers_busy.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let stats = std::sync::Arc::new(ServeStats::new());
        std::thread::scope(|s| {
            for lane in 0..16u64 {
                let stats = std::sync::Arc::clone(&stats);
                s.spawn(move || {
                    for i in 0..100 {
                        stats.record(lane, "repair", 1_000 + i, Some(i));
                    }
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.methods["repair"].latency.count(), 1_600);
        assert_eq!(snap.methods["repair"].queue_wait.count(), 1_600);
    }

    /// Satellite: sharded-merge percentiles equal single-shard percentiles
    /// over random samples — sharding is an implementation detail that
    /// must be invisible in the snapshot.
    #[test]
    fn sharded_merge_percentiles_equal_single_shard() {
        pumpkin_testkit::check(32, |rng| {
            let sharded = ServeStats::new();
            let single = ServeStats::new();
            let n = rng.range(1, 500);
            for i in 0..n {
                // Skew across several orders of magnitude, like latencies.
                let magnitude = rng.range(1, 32);
                let v = rng.below(1 << magnitude);
                sharded.record(i, "repair", v, Some(v / 2));
                single.record(0, "repair", v, Some(v / 2));
            }
            let a = &sharded.snapshot().methods["repair"];
            let b = &single.snapshot().methods["repair"];
            assert_eq!(a, b, "snapshot must be shard-count invariant");
            for q in [0.5, 0.95, 0.99] {
                assert_eq!(a.latency.quantile(q), b.latency.quantile(q));
                assert_eq!(a.queue_wait.quantile(q), b.queue_wait.quantile(q));
            }
        });
    }

    /// Satellite: p50/p95/p99 of the log₂ histogram land within one bucket
    /// (a factor of 2) of the exact nearest-rank order statistic.
    #[test]
    fn log2_quantiles_are_within_one_bucket_of_exact_order_statistics() {
        pumpkin_testkit::check(32, |rng| {
            let mut h = Histogram::default();
            let mut exact = pumpkin_testkit::LatencyHistogram::new();
            let n = rng.range(1, 2_000);
            for _ in 0..n {
                let magnitude = rng.range(1, 40);
                let v = rng.below(1 << magnitude).max(1);
                h.observe(v);
                exact.record(v);
            }
            for (q, p) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
                let approx = h.quantile(q).expect("non-empty") as f64;
                let truth = exact.percentile(p).max(1) as f64;
                // The exact value lies in some bucket [2^i, 2^(i+1)); the
                // histogram reports that bucket's geometric midpoint
                // 2^i·√2, so approx/truth ∈ (1/√2, √2] when the ranks
                // agree, and at worst one bucket over: within 2× either way.
                let ratio = approx / truth;
                assert!(
                    (0.5..=2.0).contains(&ratio),
                    "q={q}: approx {approx} vs exact {truth} (ratio {ratio})"
                );
            }
        });
    }
}
