//! Provenance: per-subterm attribution of repairs to configuration rules.
//!
//! The transformation is driven by a configuration (paper §4: Equivalence,
//! Dep-Constr, Dep-Elim, Eta, Iota); provenance records *which* rule fired
//! *where*. Each repaired constant carries a list of rewrite sites — the
//! path of the rewritten subterm (child indices from the declaration root),
//! the [`Rule`] that produced it, and the pretty-printed source/result
//! forms — rendered by `pumpkin explain` and emitted on the wire as the
//! versioned `prov` event family ([`PROV_SCHEMA_VERSION`],
//! [`crate::EventKind::ProvConst`] / [`crate::EventKind::ProvSite`]).
//!
//! Paths use a canonical child indexing shared with the lift walk and the
//! `explain` diff: `App` is head `0` then arguments `1..`; `Lambda`/`Pi`
//! are binder type `0`, body `1`; `Let` is type `0`, value `1`, body `2`;
//! `Elim` is parameters `0..p`, motive `p`, cases `p+1..`, scrutinee last.
//! A declaration root prefixes the type with `0` and the body with `1`.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Event, EventKind};

/// Version of the `prov` event family's wire schema. Bumping it makes old
/// readers preserve new events as [`crate::EventKind::Unknown`] instead of
/// misreading them; old traces (without `prov` events) parse unchanged.
pub const PROV_SCHEMA_VERSION: u32 = 1;

/// The configuration rule (or cache short-circuit) that produced a rewrite
/// site (paper §4.1's configuration components, plus the two
/// transformation-level sources of rewrites).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// The Equivalence rule: the source type itself was rewritten to the
    /// target type.
    Equivalence,
    /// Dep-Constr: a (possibly implicit) source constructor application.
    DepConstr,
    /// Dep-Elim: a dependent eliminator over the source type.
    DepElim,
    /// Eta: an eta-expansion / field projection form.
    Eta,
    /// Iota: a marked iota-reduction witness.
    Iota,
    /// The closed-subterm cache answered with a previously lifted result
    /// (paper §4.4); the rules that originally fired are recorded under
    /// the constant that first lifted the subterm.
    Cached,
    /// A global constant was replaced by its repaired counterpart (the
    /// on-demand dependency repair of paper §2).
    Constant,
}

impl Rule {
    /// Every rule, in display order.
    pub const ALL: [Rule; 7] = [
        Rule::Equivalence,
        Rule::DepConstr,
        Rule::DepElim,
        Rule::Eta,
        Rule::Iota,
        Rule::Cached,
        Rule::Constant,
    ];

    /// The stable wire name used in the JSON-lines schema.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::Equivalence => "equivalence",
            Rule::DepConstr => "dep_constr",
            Rule::DepElim => "dep_elim",
            Rule::Eta => "eta",
            Rule::Iota => "iota",
            Rule::Cached => "cached",
            Rule::Constant => "constant",
        }
    }

    /// Parses a wire name back ([`Rule::as_str`]'s inverse).
    pub fn from_str_opt(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Renders a subterm path as the dotted wire form (`""` for the root,
/// `"1.0.2"` otherwise).
pub fn path_to_string(path: &[u32]) -> String {
    path.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// Parses the dotted wire form back ([`path_to_string`]'s inverse).
pub fn path_from_str(s: &str) -> Option<Vec<u32>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split('.').map(|p| p.parse::<u32>().ok()).collect()
}

/// One rewrite site: at `path` (canonical child indices from the
/// declaration root), `rule` rewrote `src` into `dst` (pretty-printed,
/// truncated forms — the terms themselves live in the environment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvSite {
    /// Canonical path from the declaration root (see module docs).
    pub path: Vec<u32>,
    /// The configuration rule that fired.
    pub rule: Rule,
    /// The source subterm, pretty-printed (possibly truncated).
    pub src: String,
    /// The produced subterm, pretty-printed (possibly truncated).
    pub dst: String,
}

/// The provenance tree of one repaired constant: every rewrite site
/// recorded while lifting its declaration, in visit order. Sites nest by
/// path prefix (the tree structure is implicit in the paths).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstProvenance {
    /// The source constant.
    pub from: String,
    /// Its repaired name.
    pub to: String,
    /// Rewrite sites, in lift visit order.
    pub sites: Vec<ProvSite>,
}

impl ConstProvenance {
    /// Counts sites per rule, in [`Rule::ALL`] order (zero-count rules are
    /// omitted).
    pub fn rule_counts(&self) -> BTreeMap<Rule, usize> {
        let mut m = BTreeMap::new();
        for s in &self.sites {
            *m.entry(s.rule).or_insert(0) += 1;
        }
        m
    }

    /// A compact one-line citation: `dep_constr×3, dep_elim×1`.
    pub fn citation(&self) -> String {
        let counts = self.rule_counts();
        let mut parts: Vec<String> = Vec::new();
        for r in Rule::ALL {
            if let Some(&n) = counts.get(&r) {
                parts.push(if n == 1 {
                    r.to_string()
                } else {
                    format!("{r}×{n}")
                });
            }
        }
        parts.join(", ")
    }

    /// The constant's `prov` event family: one [`EventKind::ProvConst`]
    /// header followed by one [`EventKind::ProvSite`] per rewrite site.
    pub fn to_events(&self) -> Vec<EventKind> {
        let mut out = Vec::with_capacity(1 + self.sites.len());
        out.push(EventKind::ProvConst {
            name: self.from.as_str().into(),
            to: self.to.as_str().into(),
            sites: self.sites.len() as u32,
        });
        for s in &self.sites {
            out.push(EventKind::ProvSite {
                constant: self.from.as_str().into(),
                path: path_to_string(&s.path).into(),
                rule: s.rule,
                src: s.src.as_str().into(),
                dst: s.dst.as_str().into(),
            });
        }
        out
    }

    /// Reassembles per-constant provenance from an event stream (the
    /// inverse of [`ConstProvenance::to_events`], used by offline
    /// tooling). Constants appear in stream order.
    pub fn from_events(events: &[Event]) -> Vec<ConstProvenance> {
        let mut out: Vec<ConstProvenance> = Vec::new();
        for e in events {
            match &e.kind {
                EventKind::ProvConst { name, to, .. } => out.push(ConstProvenance {
                    from: name.to_string(),
                    to: to.to_string(),
                    sites: Vec::new(),
                }),
                EventKind::ProvSite {
                    constant,
                    path,
                    rule,
                    src,
                    dst,
                } => {
                    if let Some(c) = out.iter_mut().rev().find(|c| c.from == **constant) {
                        c.sites.push(ProvSite {
                            path: path_from_str(path).unwrap_or_default(),
                            rule: *rule,
                            src: src.to_string(),
                            dst: dst.to_string(),
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_wire_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_str_opt(r.as_str()), Some(r));
        }
        assert_eq!(Rule::from_str_opt("nope"), None);
    }

    #[test]
    fn paths_round_trip() {
        for p in [vec![], vec![0], vec![1, 0, 2]] {
            assert_eq!(path_from_str(&path_to_string(&p)), Some(p));
        }
        assert_eq!(path_from_str("1.x"), None);
    }

    #[test]
    fn events_round_trip_per_constant() {
        let prov = ConstProvenance {
            from: "Old.rev".into(),
            to: "New.rev".into(),
            sites: vec![
                ProvSite {
                    path: vec![1, 0],
                    rule: Rule::DepElim,
                    src: "elim l …".into(),
                    dst: "New.list_rect …".into(),
                },
                ProvSite {
                    path: vec![1, 0, 3],
                    rule: Rule::DepConstr,
                    src: "Old.nil nat".into(),
                    dst: "New.nil nat".into(),
                },
            ],
        };
        let events: Vec<Event> = prov
            .to_events()
            .into_iter()
            .map(|kind| Event {
                t_ns: 0,
                dur_ns: 0,
                worker: 0,
                kind,
            })
            .collect();
        let back = ConstProvenance::from_events(&events);
        assert_eq!(back, vec![prov]);
    }

    #[test]
    fn citation_groups_by_rule() {
        let prov = ConstProvenance {
            from: "a".into(),
            to: "b".into(),
            sites: vec![
                ProvSite {
                    path: vec![],
                    rule: Rule::DepConstr,
                    src: String::new(),
                    dst: String::new(),
                },
                ProvSite {
                    path: vec![0],
                    rule: Rule::DepConstr,
                    src: String::new(),
                    dst: String::new(),
                },
                ProvSite {
                    path: vec![1],
                    rule: Rule::Cached,
                    src: String::new(),
                    dst: String::new(),
                },
            ],
        };
        assert_eq!(prov.citation(), "dep_constr×2, cached");
    }
}
