//! Minimal hand-rolled JSON helpers: string escaping for the writers and a
//! flat-object parser for round-trip tests and tooling. Only the subset the
//! trace/metrics schemas need — flat objects whose values are strings,
//! unsigned integers, or floats — is supported; nested containers are
//! rejected. This keeps the workspace's zero-external-crates discipline
//! (see README.md, "Reproducible builds").

use std::collections::BTreeMap;

/// Escapes `s` as a JSON string (with surrounding quotes) into `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` as a JSON string, returning it with surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

/// A parsed flat JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A (unescaped) string.
    Str(String),
    /// An unsigned integer (the schemas only use non-negative integers).
    UInt(u64),
    /// Any other number (floats, negatives).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parses a single flat JSON object (`{"key": value, ...}` with scalar
/// values only) into a key → value map. Returns `None` on anything
/// malformed or nested.
pub fn parse_flat(input: &str) -> Option<BTreeMap<String, JsonValue>> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.next()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
    }
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(map)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        if self.next()? == b {
            Some(())
        } else {
            None
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Some(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.next()? as char).to_digit(16)?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are out of scope for the schemas
                        // (names are valid UTF-8 without astral escapes).
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-decode multi-byte UTF-8 sequences from the raw
                    // input rather than byte-by-byte.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return None,
                        };
                        let end = start + width;
                        let chunk = self.bytes.get(start..end)?;
                        out.push_str(std::str::from_utf8(chunk).ok()?);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        match self.peek()? {
            b'"' => Some(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'{' | b'[' => None, // flat objects only
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Option<JsonValue> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(v)
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if text.is_empty() {
            return None;
        }
        if let Ok(n) = text.parse::<u64>() {
            Some(JsonValue::UInt(n))
        } else {
            text.parse::<f64>().ok().map(JsonValue::Num)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(escape("line\nbreak\t"), "\"line\\nbreak\\t\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parse_flat_reads_scalars() {
        let m = parse_flat("{\"s\": \"hi\\n\", \"n\": 42, \"x\": -1.5, \"b\": true, \"z\": null}")
            .unwrap();
        assert_eq!(m["s"].as_str(), Some("hi\n"));
        assert_eq!(m["n"].as_u64(), Some(42));
        assert_eq!(m["x"].as_f64(), Some(-1.5));
        assert_eq!(m["b"], JsonValue::Bool(true));
        assert_eq!(m["z"], JsonValue::Null);
    }

    #[test]
    fn parse_flat_round_trips_escapes() {
        let original = "name \"with\" \\ specials\nand unicode é√";
        let line = format!("{{\"k\": {}}}", escape(original));
        let m = parse_flat(&line).unwrap();
        assert_eq!(m["k"].as_str(), Some(original));
    }

    #[test]
    fn parse_flat_rejects_nested_and_malformed() {
        assert!(parse_flat("{\"a\": {\"b\": 1}}").is_none());
        assert!(parse_flat("{\"a\": [1]}").is_none());
        assert!(parse_flat("{\"a\": 1,}").is_none());
        assert!(parse_flat("{\"a\" 1}").is_none());
        assert!(parse_flat("{\"a\": 1} trailing").is_none());
        assert!(parse_flat("").is_none());
        assert!(parse_flat("{}").is_some());
    }

    #[test]
    fn parse_flat_rejects_bad_escapes() {
        // Unknown escape letter.
        assert!(parse_flat("{\"a\": \"bad \\q escape\"}").is_none());
        // \u with non-hex digits, and \u cut short by the closing quote.
        assert!(parse_flat("{\"a\": \"\\uZZZZ\"}").is_none());
        assert!(parse_flat("{\"a\": \"\\u12\"}").is_none());
        // A lone surrogate code point is not a valid char.
        assert!(parse_flat("{\"a\": \"\\ud800\"}").is_none());
        // Backslash at end of input.
        assert!(parse_flat("{\"a\": \"dangling\\").is_none());
    }

    #[test]
    fn parse_flat_rejects_truncated_lines() {
        // Every prefix of a valid line must fail cleanly, never panic:
        // truncated tails are exactly what a killed `--trace` run leaves.
        let full = "{\"t_ns\":12,\"worker\":0,\"kind\":\"lift_constant\",\"name\":\"Old.rev\"}";
        for cut in 1..full.len() {
            if full.is_char_boundary(cut) {
                assert!(
                    parse_flat(&full[..cut]).is_none(),
                    "prefix {:?} should not parse",
                    &full[..cut]
                );
            }
        }
        assert!(parse_flat(full).is_some());
    }

    #[test]
    fn parse_flat_handles_invalid_utf8_continuation() {
        // A multi-byte lead byte followed by the closing quote: the decoder
        // must reject it, not slice out of bounds.
        assert!(parse_flat("{\"a\": \"\u{e9}").is_none());
        assert!(parse_flat("{\"a\": \"caf\u{e9}\"}").is_some());
    }

    #[test]
    fn parse_flat_rejects_bare_number_soup() {
        assert!(parse_flat("{\"a\": --3}").is_none());
        assert!(parse_flat("{\"a\": 1e}").is_none());
        assert!(parse_flat("{\"a\": +}").is_none());
    }
}
