//! Output sinks for trace event streams.
//!
//! A sink receives the run's merged event stream once, after the repair
//! finishes (events are buffered thread-confined during the run, so sinks
//! never see partial or interleaved state). Two built-ins cover the common
//! cases: [`JsonLinesSink`] writes the durable machine-readable form,
//! [`SummarySink`] renders the human-readable flamegraph-style text.

use std::io::{self, Write};

use crate::{summary, Event};

/// Consumes a finished run's event stream.
pub trait EventSink {
    /// Receives one event. Called once per event, in buffer order (master
    /// events first, then worker batches in wave/merge order).
    fn emit(&mut self, event: &Event);

    /// Called once after the last event; flush buffers here. The default
    /// does nothing.
    fn finish(&mut self) {}

    /// Reports the end-to-end wall-clock latency of the request that
    /// produced the stream, in nanoseconds — measured *around* the run
    /// (scheduling, lifting, provenance rendering), so it is distinct
    /// from, and an upper bound on, the in-stream span timings. Called at
    /// most once, before the first [`EventSink::emit`]. The default
    /// ignores it.
    fn request_wall(&mut self, _ns: u64) {}
}

/// Writes each event as one JSON object per line (the `--trace out.jsonl`
/// format; schema in DESIGN.md §11).
///
/// I/O errors do not panic mid-repair: the first failure is remembered,
/// further writes are skipped, and [`JsonLinesSink::error`] exposes it so
/// the caller can report once at the end.
pub struct JsonLinesSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink { out, error: None }
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the inner writer (flushing first), surfacing any deferred
    /// I/O error.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.finish();
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }
}

impl<W: Write> EventSink for JsonLinesSink<W> {
    fn emit(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json();
        line.push('\n');
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Buffers the stream and renders [`summary::render`]'s flamegraph-style
/// text on [`EventSink::finish`], writing it to the wrapped writer.
pub struct SummarySink<W: Write> {
    out: W,
    events: Vec<Event>,
    wall_ns: Option<u64>,
    error: Option<io::Error>,
}

impl<W: Write> SummarySink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        SummarySink {
            out,
            events: Vec::new(),
            wall_ns: None,
            error: None,
        }
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl<W: Write> EventSink for SummarySink<W> {
    fn emit(&mut self, event: &Event) {
        self.events.push(event.clone());
    }

    fn request_wall(&mut self, ns: u64) {
        self.wall_ns = Some(ns);
    }

    fn finish(&mut self) {
        let mut text = summary::render(&self.events);
        if let Some(ns) = self.wall_ns {
            // The end-to-end latency line sits above the span tree so the
            // reader sees request time vs. in-run time at a glance.
            text = format!("request wall {:.2} ms\n{text}", ns as f64 / 1e6);
        }
        if let Err(e) = self
            .out
            .write_all(text.as_bytes())
            .and_then(|()| self.out.flush())
        {
            self.error = Some(e);
        }
    }
}

/// Feeds a finished event batch through a sink: every event, then
/// [`EventSink::finish`].
pub fn drain_into(events: &[Event], sink: &mut dyn EventSink) {
    for e in events {
        sink.emit(e);
    }
    sink.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                t_ns: 0,
                dur_ns: 500,
                worker: 0,
                kind: EventKind::Run { jobs: 1 },
            },
            Event {
                t_ns: 10,
                dur_ns: 0,
                worker: 1,
                kind: EventKind::Whnf,
            },
        ]
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let events = sample_events();
        let mut sink = JsonLinesSink::new(Vec::new());
        drain_into(&events, &mut sink);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, original) in lines.iter().zip(&events) {
            assert_eq!(&Event::from_json(line).unwrap(), original);
        }
    }

    #[test]
    fn json_lines_sink_defers_io_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonLinesSink::new(Failing);
        drain_into(&sample_events(), &mut sink);
        assert!(sink.error().is_some());
    }

    #[test]
    fn summary_sink_renders_on_finish() {
        let mut sink = SummarySink::new(Vec::new());
        drain_into(&sample_events(), &mut sink);
        assert!(sink.error().is_none());
        let text = String::from_utf8(sink.out).unwrap();
        assert!(
            text.contains("run"),
            "summary mentions the run span: {text}"
        );
        assert!(!text.contains("request wall"), "no latency unless reported");
    }

    #[test]
    fn summary_sink_leads_with_request_latency_when_reported() {
        let mut sink = SummarySink::new(Vec::new());
        sink.request_wall(2_500_000);
        drain_into(&sample_events(), &mut sink);
        let text = String::from_utf8(sink.out).unwrap();
        assert!(
            text.starts_with("request wall 2.50 ms\n"),
            "latency line leads the summary: {text}"
        );
    }
}
