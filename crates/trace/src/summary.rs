//! Human-readable flamegraph-style rendering of an event stream.
//!
//! Nesting is recovered from timestamps: all tracers in a run share one
//! epoch, so a lift span belongs to the wave span whose `[t_ns, t_ns +
//! dur_ns]` window contains its start. The output is indentation-based —
//! run, then waves in index order, then each wave's per-constant lifts
//! with worker attribution and a proportional duration bar — followed by a
//! kernel-probe tally.

use crate::metrics::fmt_ns;
use crate::{CacheTable, Event, EventKind};

/// Width of the proportional duration bar next to each lift span.
const BAR: usize = 20;

/// Renders the flamegraph-style text summary of a finished run's events.
pub fn render(events: &[Event]) -> String {
    let mut out = String::new();
    if events.is_empty() {
        out.push_str("(no trace events)\n");
        return out;
    }

    let run = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Run { .. }));
    let total_ns = run.map(|e| e.dur_ns).unwrap_or_else(|| {
        events
            .iter()
            .map(|e| e.t_ns + e.dur_ns)
            .max()
            .unwrap_or(0)
            .saturating_sub(events.iter().map(|e| e.t_ns).min().unwrap_or(0))
    });
    match run {
        Some(Event {
            kind: EventKind::Run { jobs },
            ..
        }) => out.push_str(&format!("run  jobs={jobs}  total={}\n", fmt_ns(total_ns))),
        _ => out.push_str(&format!("run  total={}\n", fmt_ns(total_ns))),
    }

    let mut waves: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Wave { .. }))
        .collect();
    waves.sort_by_key(|e| match e.kind {
        EventKind::Wave { wave, .. } => wave,
        _ => unreachable!(),
    });

    let mut lifts: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LiftConstant { .. }))
        .collect();
    lifts.sort_by_key(|e| e.t_ns);
    let max_lift_ns = lifts.iter().map(|e| e.dur_ns).max().unwrap_or(0).max(1);
    let name_width = lifts
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::LiftConstant { name } => Some(name.len()),
            _ => None,
        })
        .max()
        .unwrap_or(0);

    let mut shown = vec![false; lifts.len()];
    let render_lift = |out: &mut String, lift: &Event, indent: &str| {
        if let EventKind::LiftConstant { name } = &lift.kind {
            let filled = ((lift.dur_ns as u128 * BAR as u128) / max_lift_ns as u128) as usize;
            let bar: String = "█".repeat(filled.min(BAR)) + &"·".repeat(BAR - filled.min(BAR));
            out.push_str(&format!(
                "{indent}{name:<name_width$}  w{:<2} {bar} {}\n",
                lift.worker,
                fmt_ns(lift.dur_ns)
            ));
        }
    };

    for wave in &waves {
        let (idx, width) = match wave.kind {
            EventKind::Wave { wave, width } => (wave, width),
            _ => unreachable!(),
        };
        let merge_ns = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::WaveMerge { wave } if wave == idx => Some(e.dur_ns),
                _ => None,
            })
            .unwrap_or(0);
        out.push_str(&format!(
            "  wave {idx}  width={width}  span={}  merge={}\n",
            fmt_ns(wave.dur_ns),
            fmt_ns(merge_ns)
        ));
        let (lo, hi) = (wave.t_ns, wave.t_ns + wave.dur_ns);
        for (i, lift) in lifts.iter().enumerate() {
            if !shown[i] && lift.t_ns >= lo && lift.t_ns <= hi {
                shown[i] = true;
                render_lift(&mut out, lift, "    ");
            }
        }
    }
    // Lifts outside any wave window (e.g. a single-constant repair with no
    // scheduler, or clock-skew stragglers) still get listed.
    for (i, lift) in lifts.iter().enumerate() {
        if !shown[i] {
            render_lift(&mut out, lift, "  ");
        }
    }

    let count = |pred: &dyn Fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
    let hits =
        |t: CacheTable| count(&|k| matches!(k, EventKind::CacheHit { table } if *table == t));
    let misses =
        |t: CacheTable| count(&|k| matches!(k, EventKind::CacheMiss { table } if *table == t));
    let whnf = count(&|k| matches!(k, EventKind::Whnf));
    let conv = count(&|k| matches!(k, EventKind::Conv));
    if whnf + conv > 0
        || [CacheTable::Whnf, CacheTable::Conv, CacheTable::Lift]
            .iter()
            .any(|&t| hits(t) + misses(t) > 0)
    {
        out.push_str("  kernel/caches:\n");
        out.push_str(&format!("    whnf calls {whnf}, conv calls {conv}\n"));
        for t in [CacheTable::Whnf, CacheTable::Conv, CacheTable::Lift] {
            let (h, m) = (hits(t), misses(t));
            if h + m > 0 {
                out.push_str(&format!(
                    "    {t} cache: {h} hits / {m} misses ({:.1}% hit)\n",
                    100.0 * h as f64 / (h + m) as f64
                ));
            }
        }
    }
    let rollbacks: u32 = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Rollback { dropped } => Some(dropped),
            _ => None,
        })
        .sum();
    if rollbacks > 0 {
        out.push_str(&format!("  rollbacks: {rollbacks} declarations dropped\n"));
    }
    if let Some(EventKind::Incr {
        changed,
        replayed,
        skipped,
    }) = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Incr { .. }))
        .map(|e| &e.kind)
    {
        out.push_str(&format!(
            "  incremental: changed={changed} replayed={replayed} skipped={skipped}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, dur_ns: u64, worker: u32, kind: EventKind) -> Event {
        Event {
            t_ns,
            dur_ns,
            worker,
            kind,
        }
    }

    #[test]
    fn empty_stream_renders_placeholder() {
        assert_eq!(render(&[]), "(no trace events)\n");
    }

    #[test]
    fn nests_lifts_under_their_wave_by_timestamp() {
        let events = vec![
            ev(0, 10_000, 0, EventKind::Run { jobs: 2 }),
            ev(100, 4_000, 0, EventKind::Wave { wave: 0, width: 2 }),
            ev(3_900, 200, 0, EventKind::WaveMerge { wave: 0 }),
            ev(
                200,
                1_000,
                1,
                EventKind::LiftConstant {
                    name: "Old.rev".into(),
                },
            ),
            ev(
                250,
                2_000,
                2,
                EventKind::LiftConstant {
                    name: "Old.app".into(),
                },
            ),
            ev(5_000, 3_000, 0, EventKind::Wave { wave: 1, width: 1 }),
            ev(
                5_100,
                2_500,
                1,
                EventKind::LiftConstant {
                    name: "Old.rev_involutive".into(),
                },
            ),
            ev(
                10,
                0,
                1,
                EventKind::CacheHit {
                    table: CacheTable::Whnf,
                },
            ),
            ev(
                11,
                0,
                1,
                EventKind::CacheMiss {
                    table: CacheTable::Whnf,
                },
            ),
            ev(12, 0, 1, EventKind::Whnf),
        ];
        let text = render(&events);
        let wave0 = text.find("wave 0").unwrap();
        let wave1 = text.find("wave 1").unwrap();
        let rev = text.find("Old.rev ").unwrap();
        let invol = text.find("Old.rev_involutive").unwrap();
        assert!(wave0 < rev && rev < wave1, "Old.rev listed under wave 0");
        assert!(wave1 < invol, "involutive listed under wave 1");
        assert!(text.contains("w1"), "worker attribution shown");
        assert!(text.contains("whnf cache: 1 hits / 1 misses"));
        assert!(text.contains("jobs=2"));
    }

    #[test]
    fn lift_without_wave_is_still_listed() {
        let events = vec![ev(
            0,
            500,
            0,
            EventKind::LiftConstant {
                name: "Old.length".into(),
            },
        )];
        let text = render(&events);
        assert!(text.contains("Old.length"));
    }
}
