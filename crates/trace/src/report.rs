//! Offline trace analysis: the engine behind `pumpkin trace-report`.
//!
//! Operates on JSON-lines trace files written by `--trace` (schema in
//! DESIGN.md §11–12) after the fact — no live run required. Four analyses:
//!
//! * [`critical_path`] — per wave, the slowest lift (the one the merge
//!   barrier waited for), summed into the run's critical path and a
//!   parallel-efficiency figure.
//! * [`hottest_lifts`] — top-k lift spans by duration.
//! * [`cache_by_constant`] — kernel/cache probes attributed to the
//!   innermost enclosing lift span on the same worker.
//! * [`diff`] — structural comparison of two traces (event-kind counts,
//!   constants appearing/disappearing, largest per-constant duration
//!   movers) for regression triage.
//!
//! Plus [`lint`], the schema validator behind `trace-report --lint` and
//! `scripts/trace_lint.sh`: committed golden traces must parse with zero
//! malformed lines and zero unknown kinds.
//!
//! All renderings are deterministic for a fixed input file (ties broken by
//! name), so their output can be pinned by golden tests in any build
//! profile.

use std::collections::BTreeMap;

use crate::metrics::fmt_ns;
use crate::prov::ConstProvenance;
use crate::{Event, EventKind};

/// The result of parsing a JSON-lines trace file: the events that parsed
/// (including preserved [`EventKind::Unknown`] lines) and one error per
/// malformed line.
#[derive(Debug, Default)]
pub struct ParsedTrace {
    /// Parsed events, in file order.
    pub events: Vec<Event>,
    /// `(1-based line number, message)` per unparsable line.
    pub errors: Vec<(usize, String)>,
}

/// Parses a whole trace file. Blank lines are skipped; malformed lines are
/// collected as errors rather than aborting, so one truncated tail line
/// does not hide the rest of the trace.
pub fn parse_lines(text: &str) -> ParsedTrace {
    let mut out = ParsedTrace::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json(line) {
            Some(e) => out.events.push(e),
            None => out.errors.push((
                i + 1,
                format!("malformed event line: {}", truncate(line, 80)),
            )),
        }
    }
    out
}

/// Validates a trace against the event schema: every line must parse and
/// every kind must be recognised (an [`EventKind::Unknown`] is fine for a
/// *reader*, but a committed golden file containing one means the schema
/// docs and the writer disagree). Returns one message per violation;
/// empty means clean.
pub fn lint(text: &str) -> Vec<String> {
    let parsed = parse_lines(text);
    let mut out: Vec<String> = parsed
        .errors
        .iter()
        .map(|(ln, msg)| format!("line {ln}: {msg}"))
        .collect();
    for (i, e) in parsed.events.iter().enumerate() {
        if let EventKind::Unknown { kind, .. } = &e.kind {
            out.push(format!("event {}: unknown kind {kind:?}", i + 1));
        }
    }
    out
}

/// One wave's entry on the critical path.
struct WaveCrit {
    wave: u32,
    width: u32,
    span_ns: u64,
    merge_ns: u64,
    crit_name: Option<String>,
    crit_ns: u64,
}

fn lift_spans(events: &[Event]) -> Vec<(&str, &Event)> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::LiftConstant { name } => Some((&**name, e)),
            _ => None,
        })
        .collect()
}

/// Critical-path extraction over wave spans: for each wave, the
/// longest-duration lift whose start falls inside the wave's window (the
/// lift the barrier waited for; ties broken by name for determinism),
/// plus the merge span. The sum against the run's total duration gives
/// the fraction of wall-clock the critical chain explains.
pub fn critical_path(events: &[Event]) -> String {
    let mut out = String::new();
    let run = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::Run { .. }));
    let mut waves: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Wave { .. }))
        .collect();
    waves.sort_by_key(|e| match e.kind {
        EventKind::Wave { wave, .. } => wave,
        _ => unreachable!(),
    });
    if waves.is_empty() {
        out.push_str("critical path: (no wave spans in trace)\n");
        return out;
    }
    let lifts = lift_spans(events);
    let mut crits: Vec<WaveCrit> = Vec::new();
    for w in &waves {
        let (wave, width) = match w.kind {
            EventKind::Wave { wave, width } => (wave, width),
            _ => unreachable!(),
        };
        let (lo, hi) = (w.t_ns, w.t_ns + w.dur_ns);
        let mut crit: Option<(&str, u64)> = None;
        for (name, l) in &lifts {
            if l.t_ns < lo || l.t_ns > hi {
                continue;
            }
            let better = match crit {
                None => true,
                Some((cn, cd)) => l.dur_ns > cd || (l.dur_ns == cd && *name < cn),
            };
            if better {
                crit = Some((name, l.dur_ns));
            }
        }
        let merge_ns = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::WaveMerge { wave: mw } if mw == wave => Some(e.dur_ns),
                _ => None,
            })
            .unwrap_or(0);
        crits.push(WaveCrit {
            wave,
            width,
            span_ns: w.dur_ns,
            merge_ns,
            crit_name: crit.map(|(n, _)| n.to_string()),
            crit_ns: crit.map(|(_, d)| d).unwrap_or(0),
        });
    }

    out.push_str(&format!("critical path ({} waves):\n", crits.len()));
    let name_w = crits
        .iter()
        .filter_map(|c| c.crit_name.as_deref().map(str::len))
        .max()
        .unwrap_or(1);
    let mut crit_total = 0u64;
    for c in &crits {
        crit_total += c.crit_ns + c.merge_ns;
        out.push_str(&format!(
            "  wave {:<2} width={:<2} crit={:<name_w$}  lift={:<8} merge={:<8} span={}\n",
            c.wave,
            c.width,
            c.crit_name.as_deref().unwrap_or("-"),
            fmt_ns(c.crit_ns),
            fmt_ns(c.merge_ns),
            fmt_ns(c.span_ns),
        ));
    }
    match run {
        Some(r) if r.dur_ns > 0 => {
            let pct = 100.0 * crit_total as f64 / r.dur_ns as f64;
            out.push_str(&format!(
                "  critical chain {} of run {} ({pct:.1}%)\n",
                fmt_ns(crit_total),
                fmt_ns(r.dur_ns)
            ));
            let lift_sum: u64 = lifts.iter().map(|(_, l)| l.dur_ns).sum();
            if crit_total > 0 {
                out.push_str(&format!(
                    "  total lift work {} / critical chain = {:.2}x parallel speedup bound\n",
                    fmt_ns(lift_sum),
                    lift_sum as f64 / crit_total as f64
                ));
            }
        }
        _ => out.push_str(&format!("  critical chain {}\n", fmt_ns(crit_total))),
    }
    out
}

/// The `k` longest lift spans, longest first (ties broken by name, then
/// start time).
pub fn hottest_lifts(events: &[Event], k: usize) -> String {
    let mut lifts = lift_spans(events);
    lifts.sort_by(|a, b| {
        b.1.dur_ns
            .cmp(&a.1.dur_ns)
            .then_with(|| a.0.cmp(b.0))
            .then_with(|| a.1.t_ns.cmp(&b.1.t_ns))
    });
    let mut out = String::new();
    if lifts.is_empty() {
        out.push_str("hottest lifts: (no lift spans in trace)\n");
        return out;
    }
    out.push_str(&format!("hottest lifts (top {k}):\n"));
    let name_w = lifts
        .iter()
        .take(k)
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(1);
    for (name, l) in lifts.iter().take(k) {
        out.push_str(&format!(
            "  {name:<name_w$}  w{:<2} {}\n",
            l.worker,
            fmt_ns(l.dur_ns)
        ));
    }
    out
}

#[derive(Default)]
struct CacheRow {
    lift_hits: u64,
    lift_misses: u64,
    whnf_hits: u64,
    whnf_misses: u64,
    conv_hits: u64,
    conv_misses: u64,
    whnf_calls: u64,
    conv_calls: u64,
}

impl CacheRow {
    fn total(&self) -> u64 {
        self.lift_hits
            + self.lift_misses
            + self.whnf_hits
            + self.whnf_misses
            + self.conv_hits
            + self.conv_misses
            + self.whnf_calls
            + self.conv_calls
    }
}

/// Per-constant cache behaviour: every instant kernel/cache probe is
/// attributed to the innermost lift span that contains its timestamp on
/// the same worker (nested dependency repairs win over the outer lift).
/// Probes outside any lift span land in the `(outside lift)` row.
pub fn cache_by_constant(events: &[Event]) -> String {
    use crate::CacheTable as T;
    let lifts = lift_spans(events);
    let attribute = |e: &Event| -> String {
        let mut best: Option<(&str, u64)> = None;
        for (name, l) in &lifts {
            if l.worker != e.worker || e.t_ns < l.t_ns || e.t_ns > l.t_ns + l.dur_ns {
                continue;
            }
            // The innermost enclosing span is the shortest one.
            if best.is_none_or(|(_, d)| l.dur_ns < d) {
                best = Some((name, l.dur_ns));
            }
        }
        best.map(|(n, _)| n.to_string())
            .unwrap_or_else(|| "(outside lift)".to_string())
    };
    let mut rows: BTreeMap<String, CacheRow> = BTreeMap::new();
    for e in events {
        let bump = |rows: &mut BTreeMap<String, CacheRow>, f: &dyn Fn(&mut CacheRow)| {
            f(rows.entry(attribute(e)).or_default());
        };
        match &e.kind {
            EventKind::CacheHit { table } => match table {
                T::Lift => bump(&mut rows, &|r| r.lift_hits += 1),
                T::Whnf => bump(&mut rows, &|r| r.whnf_hits += 1),
                T::Conv => bump(&mut rows, &|r| r.conv_hits += 1),
            },
            EventKind::CacheMiss { table } => match table {
                T::Lift => bump(&mut rows, &|r| r.lift_misses += 1),
                T::Whnf => bump(&mut rows, &|r| r.whnf_misses += 1),
                T::Conv => bump(&mut rows, &|r| r.conv_misses += 1),
            },
            EventKind::Whnf => bump(&mut rows, &|r| r.whnf_calls += 1),
            EventKind::Conv => bump(&mut rows, &|r| r.conv_calls += 1),
            _ => {}
        }
    }
    rows.retain(|_, r| r.total() > 0);
    let mut out = String::new();
    if rows.is_empty() {
        out.push_str("per-constant cache behaviour: (no cache/kernel probes in trace)\n");
        return out;
    }
    out.push_str("per-constant cache behaviour (hit/miss):\n");
    let name_w = rows.keys().map(String::len).max().unwrap_or(1);
    out.push_str(&format!(
        "  {:<name_w$}  {:>11}  {:>11}  {:>11}  {:>6}  {:>6}\n",
        "constant", "lift", "whnf", "conv", "whnf()", "conv()"
    ));
    for (name, r) in &rows {
        out.push_str(&format!(
            "  {name:<name_w$}  {:>11}  {:>11}  {:>11}  {:>6}  {:>6}\n",
            format!("{}/{}", r.lift_hits, r.lift_misses),
            format!("{}/{}", r.whnf_hits, r.whnf_misses),
            format!("{}/{}", r.conv_hits, r.conv_misses),
            r.whnf_calls,
            r.conv_calls,
        ));
    }
    out
}

/// Per-constant provenance summary (rule citations), when the trace
/// carries `prov` events.
pub fn provenance_summary(events: &[Event]) -> String {
    let provs = ConstProvenance::from_events(events);
    let mut out = String::new();
    if provs.is_empty() {
        return out;
    }
    out.push_str("provenance (rule citations):\n");
    let name_w = provs.iter().map(|p| p.from.len()).max().unwrap_or(1);
    for p in &provs {
        out.push_str(&format!(
            "  {:<name_w$} → {}  [{}]\n",
            p.from,
            p.to,
            if p.sites.is_empty() {
                "no rewrites".to_string()
            } else {
                p.citation()
            }
        ));
    }
    out
}

/// The full offline report: critical path, hottest lifts, per-constant
/// cache behaviour, and (if present) provenance citations.
pub fn render(events: &[Event], top_k: usize) -> String {
    let mut out = String::new();
    let runs = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Run { .. }))
        .count();
    out.push_str(&format!(
        "trace: {} events, {} run span{}\n\n",
        events.len(),
        runs,
        if runs == 1 { "" } else { "s" }
    ));
    out.push_str(&critical_path(events));
    out.push('\n');
    out.push_str(&hottest_lifts(events, top_k));
    out.push('\n');
    out.push_str(&cache_by_constant(events));
    let prov = provenance_summary(events);
    if !prov.is_empty() {
        out.push('\n');
        out.push_str(&prov);
    }
    out
}

fn kind_counts(events: &[Event]) -> BTreeMap<&'static str, u64> {
    let mut m = BTreeMap::new();
    for e in events {
        *m.entry(e.kind.as_str()).or_insert(0) += 1;
    }
    m
}

fn lift_totals(events: &[Event]) -> BTreeMap<String, u64> {
    let mut m: BTreeMap<String, u64> = BTreeMap::new();
    for (name, l) in lift_spans(events) {
        *m.entry(name.to_string()).or_insert(0) += l.dur_ns;
    }
    m
}

/// Structural diff of two traces for regression triage: event-kind count
/// deltas, constants lifted in only one trace, and the largest
/// per-constant total-lift-duration movers (top `k` by absolute delta).
pub fn diff(a: &[Event], b: &[Event], k: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace diff: A={} events, B={} events\n",
        a.len(),
        b.len()
    ));

    let (ca, cb) = (kind_counts(a), kind_counts(b));
    let mut kinds: Vec<&str> = ca.keys().chain(cb.keys()).copied().collect();
    kinds.sort_unstable();
    kinds.dedup();
    out.push_str("event kinds (A → B):\n");
    for kind in kinds {
        let (na, nb) = (
            ca.get(kind).copied().unwrap_or(0),
            cb.get(kind).copied().unwrap_or(0),
        );
        let marker = if na == nb { " " } else { "*" };
        out.push_str(&format!("  {marker} {kind:<13} {na:>6} → {nb:<6}\n"));
    }

    let (la, lb) = (lift_totals(a), lift_totals(b));
    let only_a: Vec<&String> = la.keys().filter(|n| !lb.contains_key(*n)).collect();
    let only_b: Vec<&String> = lb.keys().filter(|n| !la.contains_key(*n)).collect();
    if !only_a.is_empty() {
        out.push_str("lifted only in A:\n");
        for n in only_a {
            out.push_str(&format!("  - {n}\n"));
        }
    }
    if !only_b.is_empty() {
        out.push_str("lifted only in B:\n");
        for n in only_b {
            out.push_str(&format!("  + {n}\n"));
        }
    }

    let mut movers: Vec<(&String, u64, u64)> = la
        .iter()
        .filter_map(|(n, &da)| lb.get(n).map(|&db| (n, da, db)))
        .filter(|(_, da, db)| da != db)
        .collect();
    movers.sort_by(|x, y| {
        let dx = x.1.abs_diff(x.2);
        let dy = y.1.abs_diff(y.2);
        dy.cmp(&dx).then_with(|| x.0.cmp(y.0))
    });
    if !movers.is_empty() {
        out.push_str(&format!("largest lift-duration movers (top {k}):\n"));
        let name_w = movers
            .iter()
            .take(k)
            .map(|(n, _, _)| n.len())
            .max()
            .unwrap();
        for (n, da, db) in movers.into_iter().take(k) {
            let sign = if db > da { "+" } else { "-" };
            out.push_str(&format!(
                "  {n:<name_w$}  {:<8} → {:<8} ({sign}{})\n",
                fmt_ns(da),
                fmt_ns(db),
                fmt_ns(da.abs_diff(db)),
            ));
        }
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheTable;

    fn ev(t_ns: u64, dur_ns: u64, worker: u32, kind: EventKind) -> Event {
        Event {
            t_ns,
            dur_ns,
            worker,
            kind,
        }
    }

    fn lift(t: u64, d: u64, w: u32, name: &str) -> Event {
        ev(t, d, w, EventKind::LiftConstant { name: name.into() })
    }

    fn sample() -> Vec<Event> {
        vec![
            ev(0, 10_000, 0, EventKind::Run { jobs: 2 }),
            ev(100, 4_000, 0, EventKind::Wave { wave: 0, width: 2 }),
            ev(3_800, 200, 0, EventKind::WaveMerge { wave: 0 }),
            lift(200, 1_000, 1, "Old.app"),
            lift(250, 2_000, 2, "Old.rev"),
            ev(5_000, 4_000, 0, EventKind::Wave { wave: 1, width: 1 }),
            ev(8_900, 100, 0, EventKind::WaveMerge { wave: 1 }),
            lift(5_100, 3_000, 1, "Old.rev_involutive"),
            ev(
                300,
                0,
                1,
                EventKind::CacheHit {
                    table: CacheTable::Lift,
                },
            ),
            ev(
                260,
                0,
                2,
                EventKind::CacheMiss {
                    table: CacheTable::Whnf,
                },
            ),
            ev(5_200, 0, 1, EventKind::Whnf),
        ]
    }

    #[test]
    fn critical_path_picks_longest_lift_per_wave() {
        let text = critical_path(&sample());
        assert!(text.contains("crit=Old.rev "), "wave 0 critical: {text}");
        assert!(text.contains("crit=Old.rev_involutive"));
        // 2000 + 200 + 3000 + 100 = 5300 of 10000.
        assert!(text.contains("53.0%"), "{text}");
    }

    #[test]
    fn critical_path_breaks_duration_ties_by_name() {
        let events = vec![
            ev(0, 5_000, 0, EventKind::Run { jobs: 2 }),
            ev(0, 4_000, 0, EventKind::Wave { wave: 0, width: 2 }),
            lift(10, 1_000, 1, "Old.b"),
            lift(20, 1_000, 2, "Old.a"),
        ];
        assert!(critical_path(&events).contains("crit=Old.a"));
    }

    #[test]
    fn hottest_lifts_sorts_and_truncates() {
        let text = hottest_lifts(&sample(), 2);
        let a = text.find("Old.rev_involutive").expect("hottest first");
        let b = text.find("Old.rev ").expect("second");
        assert!(a < b);
        assert!(!text.contains("Old.app"), "k=2 truncates: {text}");
    }

    #[test]
    fn cache_probes_attribute_to_enclosing_lift_span() {
        let text = cache_by_constant(&sample());
        // lift-cache hit at t=300 on worker 1 sits inside Old.app's span.
        let row = text
            .lines()
            .find(|l| l.contains("Old.app"))
            .expect("Old.app row");
        assert!(row.contains("1/0"), "lift hit attributed: {row}");
        // whnf miss at t=260 on worker 2 sits inside Old.rev's span.
        let row = text
            .lines()
            .find(|l| l.contains("Old.rev "))
            .expect("Old.rev row");
        assert!(row.contains("0/1"), "whnf miss attributed: {row}");
    }

    #[test]
    fn nested_dependency_lift_wins_attribution() {
        let events = vec![
            lift(0, 10_000, 1, "Old.outer"),
            lift(1_000, 2_000, 1, "Old.inner"),
            ev(1_500, 0, 1, EventKind::Whnf),
        ];
        let text = cache_by_constant(&events);
        let inner = text.lines().find(|l| l.contains("Old.inner")).unwrap();
        let cols: Vec<&str> = inner.split_whitespace().collect();
        assert_eq!(cols, ["Old.inner", "0/0", "0/0", "0/0", "1", "0"]);
    }

    #[test]
    fn diff_reports_kind_deltas_and_movers() {
        let a = vec![lift(0, 1_000, 0, "Old.rev"), lift(0, 500, 0, "Old.app")];
        let b = vec![
            lift(0, 3_000, 0, "Old.rev"),
            lift(0, 500, 0, "Old.app"),
            ev(0, 0, 0, EventKind::Whnf),
        ];
        let text = diff(&a, &b, 5);
        assert!(text.contains("lift_constant      2 → 2"), "{text}");
        assert!(text.contains("* whnf"), "{text}");
        assert!(text.contains("Old.rev"), "{text}");
        assert!(text.contains("+2.0µs") || text.contains("+2.00"), "{text}");
        assert!(
            !text
                .lines()
                .any(|l| l.contains("movers") && text.contains("Old.app  ")),
            "unchanged constants are not movers"
        );
    }

    #[test]
    fn diff_reports_added_and_removed_constants() {
        let a = vec![lift(0, 1_000, 0, "Old.gone")];
        let b = vec![lift(0, 1_000, 0, "Old.new")];
        let text = diff(&a, &b, 5);
        assert!(text.contains("- Old.gone"));
        assert!(text.contains("+ Old.new"));
    }

    #[test]
    fn lint_flags_malformed_and_unknown() {
        let good = ev(0, 0, 0, EventKind::Whnf).to_json();
        let text = format!(
            "{good}\nnot json\n{{\"t_ns\":0,\"dur_ns\":0,\"worker\":0,\"kind\":\"mystery\"}}\n"
        );
        let errors = lint(&text);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("line 2"));
        assert!(errors[1].contains("mystery"));
        assert!(lint(&good).is_empty());
    }

    #[test]
    fn parse_lines_recovers_after_bad_line() {
        let good = ev(0, 0, 0, EventKind::Conv).to_json();
        let parsed = parse_lines(&format!("garbage\n\n{good}\n"));
        assert_eq!(parsed.events.len(), 1);
        assert_eq!(parsed.errors.len(), 1);
        assert_eq!(parsed.errors[0].0, 1);
    }

    #[test]
    fn render_composes_all_sections() {
        let text = render(&sample(), 3);
        assert!(text.contains("critical path"));
        assert!(text.contains("hottest lifts"));
        assert!(text.contains("per-constant cache behaviour"));
    }
}
