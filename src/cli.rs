//! The `pumpkin` command-line session: directives in the spirit of the
//! paper's Coq commands (`Configure`, `Repair`, `Repair module`), driven
//! from script files. See `src/bin/pumpkin.rs` for the file format and
//! `examples/scripts/` for walkthroughs.

use std::path::PathBuf;

use pumpkin_core::{LiftState, Lifting, NameMap, RepairReport, Repairer};
use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;

pub struct Session {
    /// The session environment.
    pub env: Env,
    lifting: Option<Lifting>,
    state: LiftState,
    jobs: usize,
    trace_path: Option<PathBuf>,
    show_metrics: bool,
    /// Provenance trees from the most recent repair command, indexed by
    /// both old and new constant names (for `explain` / `script`).
    provenance: Vec<pumpkin_core::trace::prov::ConstProvenance>,
}

impl Session {
    /// A fresh session with an empty environment.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Session {
            env: Env::new(),
            lifting: None,
            state: LiftState::new(),
            jobs: 1,
            trace_path: None,
            show_metrics: false,
            provenance: Vec::new(),
        }
    }

    /// Worker cap for the repair commands (`--jobs N`; 0 means auto).
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = if jobs == 0 {
            pumpkin_core::default_jobs()
        } else {
            jobs
        };
    }

    /// Writes every repair command's event stream to `path` as JSON lines
    /// (`--trace out.jsonl`). Each repair command truncates and rewrites
    /// the file, so it holds the last run's trace.
    pub fn set_trace_path(&mut self, path: impl Into<PathBuf>) {
        self.trace_path = Some(path.into());
    }

    /// Prints the derived metrics registry after each repair command
    /// (`--metrics`).
    pub fn set_show_metrics(&mut self, on: bool) {
        self.show_metrics = on;
    }

    /// Runs the configured [`Repairer`] over `names` (or, with `None`, the
    /// environment-wide sweep), honoring the session's jobs/trace/metrics
    /// settings.
    fn run_repairer(&mut self, names: Option<&[&str]>) -> Result<RepairReport, String> {
        let lifting = self.lifting.as_ref().ok_or("no configuration active")?;
        let mut repairer = Repairer::new(lifting)
            .jobs(self.jobs)
            .state(&mut self.state)
            .provenance(true);
        if self.show_metrics {
            repairer = repairer.trace(true);
        }
        if let Some(path) = &self.trace_path {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            let sink = pumpkin_core::trace::JsonLinesSink::new(std::io::BufWriter::new(file));
            repairer = repairer.sink(Box::new(sink));
        }
        let report = match names {
            Some(names) => repairer.run(&mut self.env, names),
            None => repairer.run_all(&mut self.env, &[]),
        }
        .map_err(|e| format!("{e}"))?;
        if let Some(path) = &self.trace_path {
            println!("trace written to {}", path.display());
        }
        if self.show_metrics {
            print!("{}", report.metrics().to_text());
        }
        // Accumulate provenance across commands so `explain` still works
        // after several `repair` invocations; newest run wins per constant.
        let fresh: Vec<_> = report.provenance.clone();
        self.provenance
            .retain(|p| !fresh.iter().any(|f| f.from == p.from));
        self.provenance.extend(fresh);
        Ok(report)
    }

    fn lifting(&self) -> Result<&Lifting, String> {
        self.lifting
            .as_ref()
            .ok_or_else(|| "no configuration active; run a configure-* command first".into())
    }

    /// Parses `From.=To.` into a NameMap.
    fn name_map(spec: &str) -> Result<NameMap, String> {
        let (from, to) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad rename spec `{spec}` (expected From.=To.)"))?;
        Ok(NameMap::prefix(from, to))
    }

    fn run(&mut self, cmd: &str, args: &[&str], body: Option<&str>) -> Result<(), String> {
        let fail = |e: &dyn std::fmt::Display| format!("{e}");
        match cmd {
            "load-std" => {
                self.env = pumpkin_stdlib::std_env();
                println!("loaded the standard library");
                Ok(())
            }
            "source" => {
                let src = body.ok_or("source requires a <<< … >>> block")?;
                pumpkin_lang::load_source(&mut self.env, src).map_err(|e| fail(&e))?;
                println!("loaded {} bytes of vernacular", src.len());
                Ok(())
            }
            "configure-swap" => {
                let [a, b, spec] = args else {
                    return Err("usage: configure-swap A B From.=To.".into());
                };
                let names = Self::name_map(spec)?;
                let l = pumpkin_core::search::swap::configure(
                    &mut self.env,
                    &GlobalName::new(*a),
                    &GlobalName::new(*b),
                    names,
                )
                .map_err(|e| fail(&e))?;
                let eqv = l.equivalence.as_ref().unwrap();
                println!(
                    "configured {a} ≃ {b}; equivalence {} / {} checked",
                    eqv.f, eqv.g
                );
                self.lifting = Some(l);
                self.state = LiftState::new();
                Ok(())
            }
            "configure-factor" => {
                let [a, b, spec] = args else {
                    return Err("usage: configure-factor A B From.=To.".into());
                };
                let names = Self::name_map(spec)?;
                let l = pumpkin_core::search::factor::configure_with(
                    &mut self.env,
                    &GlobalName::new(*a),
                    &GlobalName::new(*b),
                    [0, 1],
                    names,
                )
                .map_err(|e| fail(&e))?;
                println!("configured {a} ≃ {b} (factoring)");
                self.lifting = Some(l);
                self.state = LiftState::new();
                Ok(())
            }
            "configure-ornament" => {
                let [spec] = args else {
                    return Err("usage: configure-ornament From.=To.".into());
                };
                let names = Self::name_map(spec)?;
                let l = pumpkin_core::search::ornament::configure(&mut self.env, names)
                    .map_err(|e| fail(&e))?;
                println!("configured list ≃ Σ(n). vector n");
                self.lifting = Some(l);
                self.state = LiftState::new();
                Ok(())
            }
            "configure-bin" => {
                let [spec] = args else {
                    return Err("usage: configure-bin From.=To.".into());
                };
                let names = Self::name_map(spec)?;
                let l = pumpkin_core::manual::configure_nat_to_bin(&mut self.env, names)
                    .map_err(|e| fail(&e))?;
                println!("configured nat ≃ N (manual, propositional Iota)");
                self.lifting = Some(l);
                self.state = LiftState::new();
                Ok(())
            }
            "configure-records" => {
                let [tuple, record, spec] = args else {
                    return Err("usage: configure-records Tuple Record From.=To.".into());
                };
                let names = Self::name_map(spec)?;
                let projs = pumpkin_core::search::tuple_record::connection_projs();
                let l = pumpkin_core::search::tuple_record::configure_to_record(
                    &mut self.env,
                    &GlobalName::new(*tuple),
                    &GlobalName::new(*record),
                    &projs,
                    names,
                )
                .map_err(|e| fail(&e))?;
                println!("configured {tuple} ≃ {record}");
                self.lifting = Some(l);
                self.state = LiftState::new();
                Ok(())
            }
            "repair" => {
                if args.is_empty() {
                    return Err("usage: repair NAME…".into());
                }
                let report = self.run_repairer(Some(args))?;
                for name in args {
                    match report.renamed(name) {
                        Some(to) => println!("repaired {name} ↦ {to}"),
                        None => println!("{name} already repaired"),
                    }
                }
                Ok(())
            }
            "repair-module" => {
                if args.is_empty() {
                    return Err("usage: repair-module NAME…".into());
                }
                let report = self.run_repairer(Some(args))?;
                for (from, to) in &report.repaired {
                    println!("repaired {from} ↦ {to}");
                }
                println!("schedule: {}", report.schedule);
                Ok(())
            }
            "repair-all" => {
                let report = self.run_repairer(None)?;
                for (from, to) in &report.repaired {
                    println!("repaired {from} ↦ {to}");
                }
                println!("{} constants repaired", report.repaired.len());
                Ok(())
            }
            "mappings" => {
                let [a, b] = args else {
                    return Err("usage: mappings A B".into());
                };
                let da = self
                    .env
                    .inductive(&GlobalName::new(*a))
                    .map_err(|e| fail(&e))?
                    .clone();
                let db = self
                    .env
                    .inductive(&GlobalName::new(*b))
                    .map_err(|e| fail(&e))?
                    .clone();
                let ms = pumpkin_core::search::swap::discover_mappings(&da, &db);
                println!("{} type-correct mapping(s):", ms.len());
                for (i, m) in ms.iter().enumerate().take(8) {
                    println!(
                        "  [{i}] {}",
                        pumpkin_core::search::swap::describe_mapping(&da, &db, m)
                    );
                }
                if ms.len() > 8 {
                    println!("  … and {} more", ms.len() - 8);
                }
                Ok(())
            }
            "print" => {
                let [name] = args else {
                    return Err("usage: print NAME".into());
                };
                let decl = self
                    .env
                    .const_decl(&GlobalName::new(*name))
                    .map_err(|e| fail(&e))?
                    .clone();
                println!("{name} : {}", pumpkin_lang::pretty(&self.env, &decl.ty));
                if let Some(b) = &decl.body {
                    println!("  := {}", pumpkin_lang::pretty(&self.env, b));
                }
                Ok(())
            }
            "explain" => {
                let [name] = args else {
                    return Err("usage: explain NAME".into());
                };
                let p = self
                    .provenance
                    .iter()
                    .find(|p| p.from == *name || p.to == *name)
                    .ok_or_else(|| {
                        format!("no provenance recorded for `{name}` (run a repair command first)")
                    })?;
                let sites: Vec<pumpkin_lang::DiffSite> = p
                    .sites
                    .iter()
                    .map(|s| pumpkin_lang::DiffSite {
                        path: &s.path,
                        rule: s.rule.as_str(),
                    })
                    .collect();
                let explanation = pumpkin_lang::explain_decl(&self.env, &p.from, &p.to, &sites)
                    .ok_or_else(|| {
                        format!("`{}` or `{}` is not in the environment", p.from, p.to)
                    })?;
                print!("{}", explanation.render());
                Ok(())
            }
            "script" => {
                let [name] = args else {
                    return Err("usage: script NAME".into());
                };
                let (goal, raw) = pumpkin_tactics::decompile_constant(&self.env, name)
                    .ok_or_else(|| format!("`{name}` has no body"))?;
                let script = pumpkin_tactics::second_pass(&raw);
                let prov = &self.provenance;
                let annotate = |t: &pumpkin_tactics::Tactic| -> Option<String> {
                    let mut notes: Vec<String> = Vec::new();
                    for c in t.constants() {
                        if let Some(p) = prov
                            .iter()
                            .find(|p| p.to == c.as_str() && !p.sites.is_empty())
                        {
                            let note = format!("{}: {}", p.to, p.citation());
                            if !notes.contains(&note) {
                                notes.push(note);
                            }
                        }
                    }
                    if notes.is_empty() {
                        None
                    } else {
                        Some(notes.join("; "))
                    }
                };
                println!("Proof.");
                for line in
                    pumpkin_tactics::render_annotated(&self.env, &[], &script, &annotate).lines()
                {
                    println!("  {line}");
                }
                match pumpkin_tactics::prove(&self.env, &goal, &script) {
                    Ok(_) => println!("Qed. (* script re-elaborates and checks *)"),
                    Err(e) => println!("Abort. (* suggested script needs massaging: {e} *)"),
                }
                Ok(())
            }
            "check-source-free" => {
                let [name] = args else {
                    return Err("usage: check-source-free NAME".into());
                };
                let lifting = self.lifting()?;
                pumpkin_core::repair::check_source_free(
                    &self.env,
                    lifting,
                    &GlobalName::new(*name),
                )
                .map_err(|e| fail(&e))?;
                println!("{name} is free of {}", lifting.a_name);
                Ok(())
            }
            "eval" => {
                if args.is_empty() {
                    return Err("usage: eval TERM".into());
                }
                let src = args.join(" ");
                let t = pumpkin_lang::term(&self.env, &src).map_err(|e| fail(&e))?;
                let n = pumpkin_kernel::reduce::normalize(&self.env, &t);
                println!("= {}", pumpkin_lang::pretty(&self.env, &n));
                Ok(())
            }
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

/// Runs a script; returns the number of failed commands.
pub fn run_script(session: &mut Session, script: &str) -> usize {
    let mut failures = 0;
    let mut lines = script.lines().peekable();
    while let Some(line) = lines.next() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, body) = if let Some(stripped) = line.strip_suffix("<<<") {
            // Collect until a line that is exactly `>>>`.
            let mut buf = String::new();
            for b in lines.by_ref() {
                if b.trim() == ">>>" {
                    break;
                }
                buf.push_str(b);
                buf.push('\n');
            }
            (stripped.trim().to_string(), Some(buf))
        } else {
            (line.to_string(), None)
        };
        let mut parts = head.split_whitespace();
        let Some(cmd) = parts.next() else { continue };
        let args: Vec<&str> = parts.collect();
        if let Err(e) = session.run(cmd, &args, body.as_deref()) {
            eprintln!("error in `{head}`: {e}");
            failures += 1;
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_script_runs_clean() {
        let mut s = Session::new();
        let failures = run_script(
            &mut s,
            "load-std\n\
             configure-swap Old.list New.list Old.=New.\n\
             repair Old.rev_app_distr\n\
             check-source-free New.rev_app_distr\n\
             eval New.rev nat (New.nil nat)\n",
        );
        assert_eq!(failures, 0);
        assert!(s.env.contains("New.rev_app_distr"));
    }

    #[test]
    fn source_blocks_and_errors_are_reported() {
        let mut s = Session::new();
        let failures = run_script(
            &mut s,
            "load-std\n\
             source <<<\n\
             Definition two : nat := S (S O).\n\
             >>>\n\
             print two\n\
             repair does_not_exist\n",
        );
        // `repair` fails twice over: no configuration; counted once.
        assert_eq!(failures, 1);
        assert!(s.env.contains("two"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let mut s = Session::new();
        assert_eq!(run_script(&mut s, "frobnicate\n"), 1);
    }

    #[test]
    fn explain_works_after_repair_and_fails_before() {
        let mut s = Session::new();
        let failures = run_script(
            &mut s,
            "load-std\n\
             configure-swap Old.list New.list Old.=New.\n\
             repair Old.rev\n\
             explain Old.rev\n\
             explain New.rev\n\
             script New.rev\n",
        );
        assert_eq!(failures, 0);
        // Without a prior repair there is no provenance to cite.
        let mut s2 = Session::new();
        assert_eq!(run_script(&mut s2, "load-std\nexplain Old.rev\n"), 1);
    }
}
