//! `pumpkin loadgen` — a seed-replayable load generator for pumpkind.
//!
//! Drives a daemon over loopback with many concurrent simulated clients
//! and reports tail latency (p50/p95/p99) and throughput in the
//! `pumpkin-bench/v1` JSON-lines schema, so `bench_guard.sh` can gate
//! service-level regressions the same way it gates micro-benchmarks.
//!
//! Two arrival disciplines:
//!
//! * **closed loop** — each client issues its next request as soon as
//!   the previous reply lands; latency is request-to-reply (including
//!   `busy` retries), throughput is completed requests over wall time.
//!   This measures the pipe's capacity.
//! * **open loop** — requests arrive on a fixed schedule regardless of
//!   how the server is doing, and each latency is measured from the
//!   request's *scheduled* start, not from when a thread got around to
//!   sending it. This avoids coordinated omission: a stalled server
//!   inflates the recorded tail instead of silently slowing the
//!   generator down.
//!
//! The request stream is a pure function of `seed`: request `i` of
//! client `c` (closed loop) or scheduled slot `i` (open loop) is derived
//! from a [`pumpkin_testkit::Rng`] keyed on those indices alone, so a
//! run is replayable regardless of thread interleaving. Requests are
//! `repair`/`repair_module` calls over the stdlib swap-module constants
//! with `"deterministic": true` — the same warm-cache-friendly workload
//! the daemon is built to amortize.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pumpkin_serve::{Client, ClientError, Server, ServerConfig};
use pumpkin_testkit::{json_lines, LatencyHistogram, Rng, Sample};
use pumpkin_wire::{LiftSpec, Value};

/// Arrival discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Each client sends its next request when the previous reply lands.
    Closed,
    /// Requests arrive on a fixed schedule; latency is measured from the
    /// scheduled start.
    Open,
}

/// Knobs for one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Address of a running daemon; `None` spawns an in-process server
    /// on a loopback port (and drains it afterwards).
    pub connect: Option<String>,
    pub mode: Mode,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client (closed loop only).
    pub requests: usize,
    /// Total arrival rate in requests/second (open loop only).
    pub rate: f64,
    /// Schedule length (open loop only).
    pub duration_ms: u64,
    /// Replay seed for the request stream.
    pub seed: u64,
    /// Worker threads for the in-process server.
    pub workers: usize,
    /// Work-queue bound for the in-process server.
    pub queue_depth: usize,
    /// Per-request repair job cap.
    pub jobs: usize,
    /// Measurement passes. Every row gets one time per trial, so guard
    /// medians are taken over real repetition instead of a single
    /// observation; the spawned server (and its warm caches) is reused
    /// across trials, and each trial replays the identical seeded request
    /// stream.
    pub trials: usize,
    /// Incremental-repair mix: with `touch_rate` in (0, 1], every request
    /// asks for `"incremental": true` *except* a `touch_rate` fraction,
    /// which go out cold — simulating an editor touching the module and
    /// forcing a fresh diff. Zero (the default) keeps the classic
    /// all-cold stream byte-identical to previous releases.
    pub touch_rate: f64,
    /// Broken-module mix: a `fail_rate` fraction of requests are
    /// `repair_auto` calls over a seed-derived *broken* module (a name
    /// collision no candidate configuration can repair), so the stream
    /// exercises the automatic search's exhaustion path and its
    /// process-wide failure cache under load. The expected
    /// `auto_exhausted` replies count as completions (that *is* the
    /// service's answer), and their latencies land in separate
    /// `serve_load/auto_*` rows. Zero (the default) keeps the classic
    /// stream.
    pub fail_rate: f64,
    /// Snapshot the daemon's `stats` RPC after the trials and emit the
    /// server-side latency/queue-wait percentiles as extra
    /// `serve_load/server_*` rows — the server's own view of the same
    /// load, so client-vs-server tail comparisons ride the bench schema.
    pub server_stats: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connect: None,
            mode: Mode::Closed,
            clients: 32,
            requests: 8,
            rate: 50.0,
            duration_ms: 2000,
            seed: 0xD06_F00D,
            workers: 2,
            queue_depth: 32,
            jobs: 1,
            trials: 3,
            touch_rate: 0.0,
            fail_rate: 0.0,
            server_stats: false,
        }
    }
}

/// What a run measured. Totals aggregate over every trial; the per-trial
/// measurements behind the multi-sample rows are kept separately.
#[derive(Debug)]
pub struct LoadgenReport {
    pub mode: Mode,
    pub clients: usize,
    /// Successful replies across all trials (the latency population).
    pub completed: usize,
    /// `busy` refusals observed (retried in closed loop, dropped in open
    /// loop).
    pub busy: usize,
    /// Requests abandoned on non-`busy` errors.
    pub errors: usize,
    /// Expected `auto_exhausted` replies from the broken-module mix
    /// (completions, counted separately for the summary).
    pub exhausted: usize,
    /// Wall time summed over trials.
    pub elapsed: Duration,
    /// All latencies merged across trials (drives [`LoadgenReport::summary`]).
    pub hist: LatencyHistogram,
    trials: Vec<Trial>,
    /// Server-side `serve_load/server_*` rows (empty unless
    /// [`LoadgenConfig::server_stats`] asked for them).
    server_rows: Vec<Sample>,
}

/// One measurement pass.
#[derive(Debug)]
struct Trial {
    hist: LatencyHistogram,
    auto_hist: LatencyHistogram,
    elapsed: Duration,
}

impl LoadgenReport {
    /// The guard-facing rows: one time per trial per row, so the guard's
    /// median is over genuine repetition rather than a single observation.
    /// Throughput is encoded as *nanoseconds per completed request* so
    /// `bench_guard.sh`'s higher-is-worse median rule applies to it
    /// unchanged.
    pub fn rows(&self) -> Vec<Sample> {
        let mut p50s = Vec::with_capacity(self.trials.len());
        let mut p95s = Vec::with_capacity(self.trials.len());
        let mut p99s = Vec::with_capacity(self.trials.len());
        let mut thrs = Vec::with_capacity(self.trials.len());
        for trial in &self.trials {
            let [p50, p95, p99] = match trial.hist.percentiles(&[50.0, 95.0, 99.0])[..] {
                [a, b, c] => [a, b, c],
                _ => unreachable!("three percentiles in, three out"),
            };
            p50s.push(p50);
            p95s.push(p95);
            p99s.push(p99);
            thrs.push(if trial.hist.is_empty() {
                0
            } else {
                u64::try_from(trial.elapsed.as_nanos() / trial.hist.len() as u128)
                    .unwrap_or(u64::MAX)
            });
        }
        let mut rows = vec![
            Sample::from_times("serve_load/p50", p50s),
            Sample::from_times("serve_load/p95", p95s),
            Sample::from_times("serve_load/p99", p99s),
            Sample::from_times("serve_load/throughput", thrs),
        ];
        // Broken-module mix rows, present only when a fail-rate run put
        // `repair_auto` latencies in every trial's auto population.
        if self.trials.iter().all(|t| !t.auto_hist.is_empty()) && !self.trials.is_empty() {
            let a50s = self
                .trials
                .iter()
                .map(|t| t.auto_hist.percentile(50.0))
                .collect();
            let a99s = self
                .trials
                .iter()
                .map(|t| t.auto_hist.percentile(99.0))
                .collect();
            rows.push(Sample::from_times("serve_load/auto_p50", a50s));
            rows.push(Sample::from_times("serve_load/auto_p99", a99s));
        }
        rows.extend(self.server_rows.iter().cloned());
        rows
    }

    /// The full `pumpkin-bench/v1` report (header plus rows).
    pub fn to_json_lines(&self) -> String {
        json_lines(self.completed, &self.rows())
    }

    /// A human-readable one-screen summary.
    pub fn summary(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let rps = if self.elapsed.as_secs_f64() > 0.0 {
            self.completed as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        };
        format!(
            "loadgen: mode={:?} clients={} completed={} busy={} errors={} exhausted={}\n\
             loadgen: p50 {:.2} ms | p95 {:.2} ms | p99 {:.2} ms | max {:.2} ms\n\
             loadgen: {:.1} req/s over {:.2} s",
            self.mode,
            self.clients,
            self.completed,
            self.busy,
            self.errors,
            self.exhausted,
            ms(self.hist.percentile(50.0)),
            ms(self.hist.percentile(95.0)),
            ms(self.hist.percentile(99.0)),
            ms(self.hist.max_ns()),
            rps,
            self.elapsed.as_secs_f64(),
        )
    }
}

/// The request mix: mostly single-constant `repair`, some small
/// `repair_module` lists, all over the swap-module constants so every
/// request shares one lifting spec (the daemon's warm path). With
/// `fail_rate > 0`, that fraction of requests become `repair_auto` calls
/// over a seed-derived broken module instead.
fn request_for(rng: &mut Rng, touch_rate: f64, fail_rate: f64) -> (&'static str, Value) {
    if fail_rate > 0.0 && rng.chance((fail_rate * 1000.0).round() as u64, 1000) {
        return auto_request_for(rng);
    }
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let pool = pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS;
    let mut params = vec![
        ("lifting".to_string(), spec.to_value()),
        ("deterministic".to_string(), Value::Bool(true)),
    ];
    // Incremental mix: untouched requests ride the session's digest
    // snapshot and replay from the persist cache; "touched" ones stay
    // cold, modeling an edit that invalidates the module.
    if touch_rate > 0.0 {
        let touched = rng.chance((touch_rate * 1000.0).round() as u64, 1000);
        if !touched {
            params.push(("incremental".to_string(), Value::Bool(true)));
        }
    }
    if rng.chance(7, 10) {
        params.push(("name".into(), Value::str(*rng.pick(pool))));
        ("repair", Value::Obj(params))
    } else {
        let count = rng.range(2, 4) as usize;
        let start = rng.index(pool.len());
        let names: Vec<Value> = (0..count)
            .map(|k| Value::str(pool[(start + k) % pool.len()]))
            .collect();
        params.push(("names".into(), Value::Arr(names)));
        ("repair_module", Value::Obj(params))
    }
}

/// A `repair_auto` request over a broken module: the `Old.` constant's
/// repaired name collides with a `New.` constant the module already
/// defines, so every candidate configuration fails the kernel oracle and
/// the daemon answers `auto_exhausted`. The clash id is drawn from a
/// small pool so repeats hit the process-wide failure cache — the warm
/// path this mix is meant to exercise. Minimization is off (the module
/// is already minimal) and the budget is small to bound cold-search
/// cost under load.
fn auto_request_for(rng: &mut Rng) -> (&'static str, Value) {
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.");
    let id = rng.index(8);
    // The Old constant's type mentions Old.list, so every candidate
    // lifts it to a list-typed New.lg_clash_N — clashing with the
    // nat-typed one the module already declares.
    let source = format!(
        "Definition New.lg_clash_{id} : nat := O.\n\
         Definition Old.lg_clash_{id} : forall (T : Type 1), Old.list T -> Old.list T := \
         fun (T : Type 1) (l : Old.list T) => l.\n"
    );
    let params = vec![
        ("lifting".to_string(), spec.to_value()),
        ("deterministic".to_string(), Value::Bool(true)),
        ("source".to_string(), Value::str(&source)),
        ("budget".to_string(), Value::UInt(2)),
        ("minimize".to_string(), Value::Bool(false)),
    ];
    ("repair_auto", Value::Obj(params))
}

/// Mixes run seed and request coordinates into one RNG seed (splitmix64
/// finisher — the indices are tiny, the mix spreads them).
fn seed_for(seed: u64, client: usize, req: usize) -> u64 {
    let mut z = seed ^ ((client as u64) << 32) ^ req as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-thread tally, merged under one lock at thread exit.
#[derive(Default)]
struct Tally {
    hist: LatencyHistogram,
    /// Latencies of the `repair_auto` broken-module requests, kept out
    /// of the main population so the classic rows stay comparable.
    auto_hist: LatencyHistogram,
    busy: usize,
    errors: usize,
    exhausted: usize,
}

impl Tally {
    fn record(&mut self, method: &str, ns: u64) {
        if method == "repair_auto" {
            self.auto_hist.record(ns);
        } else {
            self.hist.record(ns);
        }
    }
}

/// One call with `busy`-retry (closed loop): `busy` means backpressure,
/// not failure, so the client backs off and retries — reconnecting when
/// the server closed the connection (the session-cap refusal does).
/// Latency spans the retries; queueing is part of the service time.
fn call_until_ok(
    addr: &str,
    conn: &mut Option<Client>,
    method: &str,
    params: &Value,
    tally: &mut Tally,
) -> bool {
    for _ in 0..10_000 {
        if conn.is_none() {
            match Client::connect(addr) {
                Ok(c) => *conn = Some(c),
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            }
        }
        let client = conn.as_mut().expect("just connected");
        match client.call(method, params.clone()) {
            Ok(_) => return true,
            // The broken-module mix *expects* exhaustion: that reply is
            // the search's complete answer, so it completes the request.
            Err(ClientError::Server { code, .. }) if code == "auto_exhausted" => {
                tally.exhausted += 1;
                return true;
            }
            Err(ClientError::Server { code, .. }) if code == "busy" => {
                tally.busy += 1;
                // The queue-full refusal keeps the connection; the
                // session-cap one closes it. Reconnecting covers both.
                *conn = None;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(ClientError::Io(_)) => {
                *conn = None;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                tally.errors += 1;
                return false;
            }
        }
    }
    tally.errors += 1;
    false
}

fn run_closed(addr: &str, cfg: &LoadgenConfig, merged: &Mutex<Tally>) {
    std::thread::scope(|s| {
        for c in 0..cfg.clients {
            s.spawn(move || {
                let mut tally = Tally::default();
                let mut conn: Option<Client> = None;
                for r in 0..cfg.requests {
                    let mut rng = Rng::new(seed_for(cfg.seed, c, r));
                    let (method, params) = request_for(&mut rng, cfg.touch_rate, cfg.fail_rate);
                    let t0 = Instant::now();
                    if call_until_ok(addr, &mut conn, method, &params, &mut tally) {
                        tally.record(
                            method,
                            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                }
                merge(merged, tally);
            });
        }
    });
}

fn run_open(addr: &str, cfg: &LoadgenConfig, merged: &Mutex<Tally>) {
    let total = ((cfg.rate * cfg.duration_ms as f64) / 1000.0)
        .round()
        .max(1.0) as usize;
    let interval = Duration::from_secs_f64(1.0 / cfg.rate.max(0.001));
    let start = Instant::now() + Duration::from_millis(5);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..cfg.clients {
            let next = &next;
            s.spawn(move || {
                let mut tally = Tally::default();
                let mut conn: Option<Client> = None;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let scheduled = start + interval * u32::try_from(i).unwrap_or(u32::MAX);
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let mut rng = Rng::new(seed_for(cfg.seed, 0, i));
                    let (method, params) = request_for(&mut rng, cfg.touch_rate, cfg.fail_rate);
                    if conn.is_none() {
                        conn = Client::connect(addr).ok();
                    }
                    let Some(client) = conn.as_mut() else {
                        tally.errors += 1;
                        continue;
                    };
                    match client.call(method, params) {
                        Ok(_) => tally.record(
                            method,
                            u64::try_from(scheduled.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        ),
                        Err(ClientError::Server { code, .. }) if code == "auto_exhausted" => {
                            tally.exhausted += 1;
                            tally.record(
                                method,
                                u64::try_from(scheduled.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            );
                        }
                        // Open loop: a refused arrival is load the server
                        // shed, not a request to retry later.
                        Err(ClientError::Server { code, .. }) if code == "busy" => {
                            tally.busy += 1;
                            conn = None;
                        }
                        Err(_) => {
                            tally.errors += 1;
                            conn = None;
                        }
                    }
                }
                merge(merged, tally);
            });
        }
    });
}

fn merge(merged: &Mutex<Tally>, tally: Tally) {
    let mut m = merged.lock().expect("tally lock poisoned");
    m.hist.merge(&tally.hist);
    m.auto_hist.merge(&tally.auto_hist);
    m.busy += tally.busy;
    m.errors += tally.errors;
    m.exhausted += tally.exhausted;
}

/// Runs one load generation pass.
///
/// # Errors
///
/// Returns a message when the in-process server cannot bind or an
/// external address never answers a ping.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    // Self-hosted mode: bind a worker-pool server on a free loopback
    // port and drain it before returning. The session cap is sized to
    // the client count — connection-level admission is not what this
    // tool measures; queue backpressure is.
    let mut spawned: Option<std::thread::JoinHandle<()>> = None;
    let addr = match &cfg.connect {
        Some(a) => a.clone(),
        None => {
            // An incremental mix needs a persist cache for replays to
            // land; give the spawned server a per-process scratch one.
            let cache_dir = (cfg.touch_rate > 0.0).then(|| {
                std::env::temp_dir().join(format!("pumpkin-loadgen-{}", std::process::id()))
            });
            let server = Server::bind(ServerConfig {
                listen: "127.0.0.1:0".into(),
                jobs: cfg.jobs,
                workers: cfg.workers,
                queue_depth: cfg.queue_depth,
                max_sessions: cfg.clients + 8,
                cache_dir,
                ..ServerConfig::default()
            })
            .map_err(|e| format!("cannot bind loopback server: {e}"))?;
            let addr = server
                .local_addr()
                .map_err(|e| format!("cannot read bound address: {e}"))?
                .to_string();
            spawned = Some(std::thread::spawn(move || {
                let _ = server.run();
            }));
            addr
        }
    };
    // One warm-up ping so connect failures surface as an error, not as a
    // uniformly-failed run.
    let mut probe = Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    probe
        .call("ping", Value::Obj(vec![]))
        .map_err(|e| format!("daemon at {addr} does not answer ping: {e}"))?;
    drop(probe);

    // Measurement passes: the server (spawned or external) and its warm
    // caches persist across trials; each trial replays the same seeded
    // request stream and lands one time in every row.
    let mut trials = Vec::with_capacity(cfg.trials.max(1));
    let mut merged_hist = LatencyHistogram::default();
    let mut completed_auto = 0usize;
    let (mut busy, mut errors, mut exhausted) = (0usize, 0usize, 0usize);
    let mut elapsed = Duration::ZERO;
    for _ in 0..cfg.trials.max(1) {
        let merged = Mutex::new(Tally::default());
        let t0 = Instant::now();
        match cfg.mode {
            Mode::Closed => run_closed(&addr, cfg, &merged),
            Mode::Open => run_open(&addr, cfg, &merged),
        }
        let trial_elapsed = t0.elapsed();
        let tally = merged.into_inner().expect("tally lock poisoned");
        merged_hist.merge(&tally.hist);
        completed_auto += tally.auto_hist.len();
        busy += tally.busy;
        errors += tally.errors;
        exhausted += tally.exhausted;
        elapsed += trial_elapsed;
        trials.push(Trial {
            hist: tally.hist,
            auto_hist: tally.auto_hist,
            elapsed: trial_elapsed,
        });
    }

    // Server-side view of the load just generated, snapshotted before
    // the shutdown tears the registry down with the daemon.
    let mut server_rows = Vec::new();
    if cfg.server_stats {
        server_rows = fetch_server_rows(&addr)?;
    }

    if let Some(handle) = spawned {
        if let Ok(mut c) = Client::connect(&addr) {
            let _ = c.call("shutdown", Value::Obj(vec![]));
        }
        let _ = handle.join();
    }

    Ok(LoadgenReport {
        mode: cfg.mode,
        clients: cfg.clients,
        completed: merged_hist.len() + completed_auto,
        busy,
        errors,
        exhausted,
        elapsed,
        hist: merged_hist,
        trials,
        server_rows,
    })
}

/// Reads the daemon's `stats` snapshot and lifts its whole-population
/// (`total`) latency and queue-wait percentiles into bench rows. The
/// daemon's histograms are log₂-bucketed, so these are bucket-midpoint
/// estimates (within √2 of exact) — `bench_guard.sh`'s server-vs-client
/// gate allows for that.
fn fetch_server_rows(addr: &str) -> Result<Vec<Sample>, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("stats connect failed: {e}"))?;
    let stats = c
        .call("stats", Value::Obj(vec![]))
        .map_err(|e| format!("stats call failed: {e}"))?;
    let field = |block: &str, q: &str| {
        stats
            .get("total")
            .and_then(|t| t.get(block))
            .and_then(|b| b.get(q))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    Ok(vec![
        Sample::single("serve_load/server_p50", field("latency", "p50_ns")),
        Sample::single("serve_load/server_p99", field("latency", "p99_ns")),
        Sample::single("serve_load/server_queue_p50", field("queue_wait", "p50_ns")),
        Sample::single("serve_load/server_queue_p99", field("queue_wait", "p99_ns")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_a_pure_function_of_the_seed() {
        for (c, r) in [(0usize, 0usize), (3, 1), (200, 7)] {
            let a = request_for(&mut Rng::new(seed_for(42, c, r)), 0.0, 0.0);
            let b = request_for(&mut Rng::new(seed_for(42, c, r)), 0.0, 0.0);
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_string(), b.1.to_string());
        }
        // Different coordinates decorrelate (not all identical).
        let reqs: Vec<String> = (0..16)
            .map(|r| {
                request_for(&mut Rng::new(seed_for(42, 0, r)), 0.0, 0.0)
                    .1
                    .to_string()
            })
            .collect();
        assert!(reqs.iter().any(|x| *x != reqs[0]));
    }

    #[test]
    fn fail_rate_one_turns_every_request_into_repair_auto() {
        for r in 0..8 {
            let (method, params) = request_for(&mut Rng::new(seed_for(9, 0, r)), 0.0, 1.0);
            assert_eq!(method, "repair_auto");
            let src = params
                .get("source")
                .and_then(Value::as_str)
                .expect("auto request carries a module source");
            assert!(src.contains("Definition New.lg_clash_"), "{src}");
            assert!(src.contains("Definition Old.lg_clash_"), "{src}");
        }
    }

    #[test]
    fn closed_loop_smoke_measures_latency_and_throughput() {
        let report = run(&LoadgenConfig {
            clients: 4,
            requests: 2,
            workers: 2,
            server_stats: true,
            ..LoadgenConfig::default()
        })
        .expect("loadgen run");
        // 4 clients x 2 requests x 3 trials (the default).
        assert_eq!(report.completed, 24, "{}", report.summary());
        assert_eq!(report.errors, 0, "{}", report.summary());
        let rows = report.rows();
        // Client-side rows carry one time per trial, never a single
        // sample; server-side rows are one cumulative snapshot.
        let ids: Vec<&str> = rows.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "serve_load/p50",
                "serve_load/p95",
                "serve_load/p99",
                "serve_load/throughput",
                "serve_load/server_p50",
                "serve_load/server_p99",
                "serve_load/server_queue_p50",
                "serve_load/server_queue_p99",
            ]
        );
        assert!(rows[..4].iter().all(|s| s.times_ns.len() == 3), "{rows:?}");
        assert!(rows.iter().all(|s| s.median().as_nanos() > 0));
        let json = report.to_json_lines();
        assert!(
            json.starts_with(r#"{"schema":"pumpkin-bench/v1""#),
            "{json}"
        );
    }

    #[test]
    fn fail_rate_mix_counts_exhaustions_and_emits_auto_rows() {
        let report = run(&LoadgenConfig {
            clients: 2,
            requests: 2,
            workers: 2,
            trials: 2,
            fail_rate: 1.0,
            ..LoadgenConfig::default()
        })
        .expect("loadgen run");
        // Every request is a broken-module repair_auto: the expected
        // exhaustion replies complete the requests instead of erroring.
        assert_eq!(report.completed, 8, "{}", report.summary());
        assert_eq!(report.errors, 0, "{}", report.summary());
        assert_eq!(report.exhausted, 8, "{}", report.summary());
        let rows = report.rows();
        let ids: Vec<&str> = rows.iter().map(|s| s.id.as_str()).collect();
        assert!(ids.contains(&"serve_load/auto_p50"), "{ids:?}");
        assert!(ids.contains(&"serve_load/auto_p99"), "{ids:?}");
        let auto_p50 = rows
            .iter()
            .find(|s| s.id == "serve_load/auto_p50")
            .expect("auto row present");
        assert_eq!(auto_p50.times_ns.len(), 2, "{auto_p50:?}");
    }

    #[test]
    fn open_loop_smoke_respects_the_schedule() {
        let report = run(&LoadgenConfig {
            mode: Mode::Open,
            clients: 4,
            rate: 40.0,
            duration_ms: 500,
            workers: 2,
            trials: 1,
            ..LoadgenConfig::default()
        })
        .expect("loadgen run");
        // 40 req/s over 0.5 s = 20 scheduled arrivals; every one either
        // completed, was shed as busy, or failed — none vanish.
        assert_eq!(
            report.completed + report.busy + report.errors,
            20,
            "{}",
            report.summary()
        );
        assert!(report.completed > 0, "{}", report.summary());
    }
}
