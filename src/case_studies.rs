//! Reusable drivers for the paper's four case studies (§6), shared by the
//! integration tests and the benchmark harness so both measure exactly the
//! same work.
//!
//! Each driver takes a freshly built standard environment, runs
//! Configure + Transform (and where relevant Decompile), and returns the
//! names it produced. All outputs are kernel-checked as they are defined.

use pumpkin_core::{LiftState, NameMap, RepairReport, Repairer, Result};
use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;

/// §2 / §6.1: swap the list constructors and repair the whole list module.
pub fn swap_list_module(env: &mut Env) -> Result<RepairReport> {
    let lifting = pumpkin_core::search::swap::configure(
        env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )?;
    let mut st = LiftState::new();
    Repairer::new(&lifting)
        .state(&mut st)
        .run(env, pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS)
}

/// [`swap_list_module`] through the parallel wavefront scheduler with an
/// explicit worker count — the `repair_parallel/jobs=N` ablation workload.
/// Produces the same repaired module; the report additionally carries
/// `schedule` counters.
pub fn swap_list_module_parallel(env: &mut Env, jobs: usize) -> Result<RepairReport> {
    let lifting = pumpkin_core::search::swap::configure(
        env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )?;
    let mut st = LiftState::new();
    Repairer::new(&lifting)
        .state(&mut st)
        .jobs(jobs)
        .run(env, pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS)
}

/// [`swap_list_module`] through the [`Repairer`] front door with trace
/// capture on — the `trace_overhead/on` ablation workload and the
/// reference producer for the `--trace` JSON-lines schema. The report
/// carries the full event stream and the derived metrics registry.
pub fn swap_list_module_traced(env: &mut Env, jobs: usize) -> Result<RepairReport> {
    let lifting = pumpkin_core::search::swap::configure(
        env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )?;
    Repairer::new(&lifting)
        .jobs(jobs)
        .trace(true)
        .run(env, pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS)
}

/// [`swap_list_module`] with the provenance recorder on but the trace
/// sink off — the `trace_overhead/prov` ablation workload. The report
/// carries per-constant provenance trees and no event stream.
pub fn swap_list_module_provenance(env: &mut Env, jobs: usize) -> Result<RepairReport> {
    let lifting = pumpkin_core::search::swap::configure(
        env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )?;
    Repairer::new(&lifting)
        .jobs(jobs)
        .provenance(true)
        .run(env, pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS)
}

/// The `Old.Term` development repaired in one REPLICA variant.
pub const REPLICA_CONSTANTS: &[&str] = &[
    "Old.size",
    "Old.eval",
    "Old.swap_eq_args",
    "Old.swap_eq_args_involutive",
    "Old.eval_eq_true_or_false",
];

/// §6.1: one REPLICA benchmark variant — repair the `Term` development
/// across a constructor permutation/renaming given by a declared variant
/// type.
pub fn replica_variant(env: &mut Env, to: &str, prefix_to: &str) -> Result<RepairReport> {
    let lifting = pumpkin_core::search::swap::configure(
        env,
        &"Old.Term".into(),
        &to.into(),
        NameMap::prefix("Old.", prefix_to),
    )?;
    let mut st = LiftState::new();
    Repairer::new(&lifting)
        .state(&mut st)
        .run(env, REPLICA_CONSTANTS)
}

/// Declares the paper's harder REPLICA variants (§6.1.2) and returns their
/// `(type name, rename prefix)` pairs: rename-all, permute >2, and
/// permute + rename.
pub fn declare_replica_variants(env: &mut Env) -> Result<Vec<(String, String)>> {
    use pumpkin_stdlib::replica::{canonical_ctors, term_variant, CtorKind};
    let mut out = Vec::new();

    // Rename every constructor, same order.
    let renamed: Vec<_> = CtorKind::ALL
        .iter()
        .map(|k| (*k, format!("Rn.{}", k.base_name().to_lowercase())))
        .collect();
    env.declare_inductive(term_variant("Rn.Term", &renamed))
        .map_err(pumpkin_core::RepairError::Kernel)?;
    out.push(("Rn.Term".to_string(), "Rn.".to_string()));

    // Permute more than two constructors (a 2+2 cycle on the same-type
    // group).
    let mut permuted = canonical_ctors("Pm.");
    permuted.swap(2, 5);
    permuted.swap(3, 4);
    env.declare_inductive(term_variant("Pm.Term", &permuted))
        .map_err(pumpkin_core::RepairError::Kernel)?;
    out.push(("Pm.Term".to_string(), "Pm.".to_string()));

    // Permute and rename at once.
    let mut pr: Vec<_> = CtorKind::ALL
        .iter()
        .map(|k| (*k, format!("PR.{}_", k.base_name())))
        .collect();
    pr.swap(1, 2);
    env.declare_inductive(term_variant("PR.Term", &pr))
        .map_err(pumpkin_core::RepairError::Kernel)?;
    out.push(("PR.Term".to_string(), "PR.".to_string()));
    Ok(out)
}

/// §3.1.1: factor `I`'s constructors out to `bool` and repair the De Morgan
/// development.
pub fn factor_demorgan(env: &mut Env) -> Result<RepairReport> {
    let lifting = pumpkin_core::search::factor::configure_with(
        env,
        &"I".into(),
        &"J".into(),
        [0, 1],
        NameMap::prefix("I.", "J."),
    )?;
    let mut st = LiftState::new();
    Repairer::new(&lifting).state(&mut st).run(
        env,
        &["I.neg", "I.and", "I.or", "I.demorgan_1", "I.demorgan_2"],
    )
}

/// The constants the ornament stage of §6.2 repairs.
pub const ZIP_CONSTANTS: &[&str] = &[
    "zip",
    "zip_with",
    "zip_with_is_zip",
    "length",
    "zip_length",
    "zip_with_length",
    // The rest of the list module, Devoid-style (paper §6.2: ornaments as
    // proof reuse): functions and proofs alike.
    "app",
    "rev",
    "map",
    "fold",
    "app_nil_r",
    "app_assoc",
    "rev_app_distr",
    "rev_involutive",
    "length_app",
    "rev_length",
    "map_app",
    "fold_app",
];

/// §6.2 stage 1: repair the zip development across `list ≃ Σ(n). vector n`.
pub fn ornament_zip(env: &mut Env) -> Result<RepairReport> {
    let lifting = pumpkin_core::search::ornament::configure(env, NameMap::prefix("", "Sig."))?;
    let mut st = LiftState::new();
    Repairer::new(&lifting)
        .state(&mut st)
        .run(env, ZIP_CONSTANTS)
}

/// §6.2 stage 2 glue: packing combinators, index invariants, the at-index
/// zips, and the final lemma over vectors at a particular length.
pub const AT_INDEX_SRC: &str = include_str!("at_index.v");

/// §6.2 stage 2: the unpack equivalence plus the at-index development
/// (requires [`ornament_zip`] to have run).
pub fn vectors_at_index(env: &mut Env) -> Result<()> {
    pumpkin_core::search::unpack::configure(env)?;
    if !env.contains("vzip_with_is_zip") {
        pumpkin_lang::load_source(env, AT_INDEX_SRC)?;
    }
    Ok(())
}

/// §6.3: the manual nat → N configuration; repairs `add` to `slow_add` and
/// the ι-expanded `add_n_Sm` to `slow_add_n_Sm`. Returns their names.
pub fn binary_nat(env: &mut Env) -> Result<(GlobalName, GlobalName)> {
    let names = NameMap::prefix("add_n_Sm_expanded", "slow_add_n_Sm")
        .with_rule("add_1_r", "Bin.add_1_r")
        .with_rule("add", "slow_add")
        .with_rule("mul", "slow_mul")
        .with_rule("", "Bin.");
    let lifting = pumpkin_core::manual::configure_nat_to_bin(env, names)?;
    pumpkin_core::manual::load_expanded_add_n_sm(env)?;
    let mut st = LiftState::new();
    let slow_add = Repairer::new(&lifting)
        .state(&mut st)
        .run_one(env, &"add".into())?;
    // mul's body references add: dependency repair kicks in even under a
    // manual configuration, reusing the cached slow_add mapping.
    Repairer::new(&lifting)
        .state(&mut st)
        .run_one(env, &"mul".into())?;
    let lemma = Repairer::new(&lifting)
        .state(&mut st)
        .run_one(env, &"add_n_Sm_expanded".into())?;
    Ok((slow_add, lemma))
}

/// §6.4: the Galois round trip — port `cork` and `corkLemma` to records,
/// then the lemma back to tuples. Returns (record lemma, round-tripped
/// lemma).
pub fn galois_round_trip(env: &mut Env) -> Result<(GlobalName, GlobalName)> {
    let projs = pumpkin_core::search::tuple_record::connection_projs();
    let fwd = pumpkin_core::search::tuple_record::configure_to_record(
        env,
        &"Connection".into(),
        &"Record.Connection".into(),
        &projs,
        NameMap::prefix("", "Record."),
    )?;
    let mut st = LiftState::new();
    Repairer::new(&fwd)
        .state(&mut st)
        .run_one(env, &"cork".into())?;
    let lemma = Repairer::new(&fwd)
        .state(&mut st)
        .run_one(env, &"corkLemma".into())?;

    let back = pumpkin_core::search::tuple_record::configure_to_tuple(
        env,
        &"Record.Connection".into(),
        &"Connection".into(),
        &projs,
        NameMap::prefix("Record.", "Tup."),
    )?;
    let mut st2 = LiftState::new();
    st2.map_constant("Record.cork", "cork");
    let round = Repairer::new(&back).state(&mut st2).run_one(env, &lemma)?;
    Ok((lemma, round))
}
