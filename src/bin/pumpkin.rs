//! `pumpkin` — a command-line driver for the repair engine.
//!
//! Usage: `pumpkin [--jobs N] [--trace out.jsonl] [--metrics] <script.pi | ->`.
//! See [`pumpkin_pi::cli`] for the directive reference and
//! `examples/scripts/` for walkthroughs.
//!
//! * `--jobs N` — worker cap for the repair commands (0 = auto).
//! * `--trace out.jsonl` — write each repair command's structured event
//!   stream as JSON lines (schema in DESIGN.md §11).
//! * `--metrics` — print the derived counters/histograms after each
//!   repair command.
//!
//! A second mode analyzes traces offline (no script, no environment):
//! `pumpkin trace-report [--lint] [--top K] <file.jsonl> [file2.jsonl]`.
//! One file renders the full report (critical path, hottest lifts, cache
//! behavior per constant, provenance summary); two files render a
//! structural diff; `--lint` validates the file(s) against the schema and
//! exits nonzero on violations.

use std::io::Read;
use std::process::ExitCode;

use pumpkin_pi::cli::{run_script, Session};
use pumpkin_serve::{Client, ServerConfig};
use pumpkin_wire::{LiftSpec, Value};

const USAGE: &str = "usage: pumpkin [--jobs N] [--trace out.jsonl] [--metrics] <script.pi | ->\n\
                     \x20      pumpkin trace-report [--lint] [--top K] <file.jsonl> [file2.jsonl]\n\
                     \x20      pumpkin serve [--listen ADDR] [--unix PATH] [--jobs N] [--max-sessions N]\n\
                     \x20                    [--workers N] [--queue-depth N] [--cache-dir DIR]\n\
                     \x20                    [--cache-max-bytes N] [--slow-ms N] [--log PATH]\n\
                     \x20      pumpkin client --connect ADDR <hello|ping|shutdown|metrics|stats|repair-module|explain|call> [args]\n\
                     \x20                     (stats takes [--json|--prometheus])\n\
                     \x20      pumpkin top --connect ADDR [--interval-ms N] [--count N]\n\
                     \x20      pumpkin watch [--poll-ms MS] [--max-runs N] [--jobs N] [--cache-dir DIR]\n\
                     \x20                    [--cache-max-bytes N] [--swap A B] [--rename From.=To.]\n\
                     \x20                    [--names n1,n2,...] <module.pi>\n\
                     \x20      pumpkin auto [--budget N] [--emit-repro PATH] [--jobs N] [--seed S]\n\
                     \x20                   [--no-failure-cache] [--swap A B] [--rename From.=To.]\n\
                     \x20                   [--names n1,n2,...] <module.pi>\n\
                     \x20      pumpkin loadgen [--connect ADDR] [--mode closed|open] [--clients N] [--requests N]\n\
                     \x20                      [--rate R] [--duration-ms D] [--seed S] [--workers N]\n\
                     \x20                      [--queue-depth N] [--jobs N] [--trials N] [--touch-rate R]\n\
                     \x20                      [--fail-rate R] [--json PATH] [--server-stats]";

fn serve(argv: &[String]) -> ExitCode {
    let mut cfg = ServerConfig {
        listen: "127.0.0.1:7717".into(),
        ..ServerConfig::default()
    };
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().map(String::to_owned).ok_or_else(|| {
                eprintln!("{what} needs a value\n{USAGE}");
            })
        };
        match arg.as_str() {
            "--listen" => match take("--listen") {
                Ok(v) => cfg.listen = v,
                Err(()) => return ExitCode::FAILURE,
            },
            "--unix" => match take("--unix") {
                Ok(v) => cfg.unix = Some(v.into()),
                Err(()) => return ExitCode::FAILURE,
            },
            "--cache-dir" => match take("--cache-dir") {
                Ok(v) => cfg.cache_dir = Some(v.into()),
                Err(()) => return ExitCode::FAILURE,
            },
            "--cache-max-bytes" => match take("--cache-max-bytes").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => cfg.cache_max_bytes = Some(n),
                _ => {
                    eprintln!("--cache-max-bytes needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match take("--jobs").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) => cfg.jobs = n.max(1),
                _ => {
                    eprintln!("--jobs needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--max-sessions" => match take("--max-sessions").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) => cfg.max_sessions = n.max(1),
                _ => {
                    eprintln!("--max-sessions needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match take("--workers").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) => cfg.workers = n.max(1),
                _ => {
                    eprintln!("--workers needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--queue-depth" => match take("--queue-depth").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) => cfg.queue_depth = n.max(1),
                _ => {
                    eprintln!("--queue-depth needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--slow-ms" => match take("--slow-ms").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => cfg.slow_ms = Some(n),
                _ => {
                    eprintln!("--slow-ms needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--log" => match take("--log") {
                Ok(v) => cfg.log = Some(v.into()),
                Err(()) => return ExitCode::FAILURE,
            },
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let server = match pumpkin_serve::Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Scripts (check.sh, tests) parse this exact line to learn
            // the port when listening on :0.
            println!("pumpkind listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            println!("pumpkind drained; bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the `lifting`/`names` request params shared by the client's
/// repair-module and explain verbs.
fn client_lift_params(
    args: &mut std::slice::Iter<'_, String>,
    single: bool,
) -> Result<Vec<(String, Value)>, String> {
    let mut swap: Option<(String, String)> = None;
    let mut rename: Option<(String, String)> = None;
    let mut names: Vec<Value> = Vec::new();
    let mut deterministic = false;
    let mut jobs: Option<u64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--swap" => {
                let (Some(a), Some(b)) = (args.next(), args.next()) else {
                    return Err("--swap needs two type names".into());
                };
                swap = Some((a.clone(), b.clone()));
            }
            "--rename" => {
                let (Some(f), Some(t)) = (args.next(), args.next()) else {
                    return Err("--rename needs two prefixes".into());
                };
                rename = Some((f.clone(), t.clone()));
            }
            "--name" | "--names" => {
                let Some(list) = args.next() else {
                    return Err(format!("{arg} needs a value"));
                };
                names.extend(list.split(',').map(Value::str));
            }
            "--deterministic" => deterministic = true,
            "--jobs" => {
                jobs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--jobs needs a number")?,
                );
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let Some((a, b)) = swap else {
        return Err("--swap A B is required".into());
    };
    // Default the rename to the modules the swapped types live in:
    // swapping Old.list for New.list renames Old.* to New.*.
    let module_of = |n: &str| {
        n.rsplit_once('.')
            .map_or(String::new(), |(m, _)| format!("{m}."))
    };
    let (from, to) = rename.unwrap_or_else(|| (module_of(&a), module_of(&b)));
    if names.is_empty() {
        return Err("--names n1,n2,... is required".into());
    }
    let spec = LiftSpec::swap(&a, &b, &from, &to);
    let mut params = vec![("lifting".to_string(), spec.to_value())];
    if single {
        let Some(Value::Str(name)) = names.first().filter(|_| names.len() == 1) else {
            return Err("explain takes exactly one --name".into());
        };
        params.push(("name".into(), Value::str(name)));
    } else {
        params.push(("names".into(), Value::Arr(names)));
    }
    if deterministic {
        params.push(("deterministic".into(), Value::Bool(true)));
    }
    if let Some(j) = jobs {
        params.push(("jobs".into(), Value::UInt(j)));
    }
    Ok(params)
}

fn render_client_result(method: &str, result: &Value) {
    match method {
        "repair" | "repair_module" => {
            if let Some(report) = result.get("report") {
                if let Some(Value::Arr(pairs)) = report.get("repaired") {
                    for p in pairs {
                        if let Value::Arr(pair) = p {
                            if let (Some(f), Some(t)) = (
                                pair.first().and_then(Value::as_str),
                                pair.get(1).and_then(Value::as_str),
                            ) {
                                println!("repaired {f} -> {t}");
                            }
                        }
                    }
                }
                let stat = |k: &str| report.get(k).and_then(Value::as_u64).unwrap_or(0);
                println!(
                    "waves {} width {} | cache {}/{} | persist {}/{} | {:.2} ms",
                    stat("waves"),
                    stat("max_width"),
                    stat("cache_hits"),
                    stat("cache_hits") + stat("cache_misses"),
                    stat("persist_hits"),
                    stat("persist_hits") + stat("persist_misses"),
                    stat("wall_ns") as f64 / 1e6,
                );
                return;
            }
            println!("{result}");
        }
        "explain" => match result.get("explanation").and_then(Value::as_str) {
            Some(text) => print!("{text}"),
            None => println!("{result}"),
        },
        "metrics" | "trace_report" => {
            let text = result
                .get("text")
                .or_else(|| result.get("report"))
                .and_then(Value::as_str);
            match text {
                Some(text) => print!("{text}"),
                None => println!("{result}"),
            }
        }
        _ => println!("{result}"),
    }
}

/// Pulls one `u64` field out of a method's histogram block in a `stats`
/// result (`latency`/`queue_wait` → `count`/`p50_ns`/…); 0 when absent.
fn stat_field(method: &Value, block: &str, field: &str) -> u64 {
    method
        .get(block)
        .and_then(|b| b.get(field))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Renders a `stats` result as a human-readable table: one row per
/// method, then the gauge block.
fn render_stats_table(result: &Value) {
    if let Some(schema) = result.get("schema").and_then(Value::as_str) {
        println!("schema {schema}");
    }
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "METHOD", "COUNT", "P50_MS", "P95_MS", "P99_MS", "QWAIT_P99_MS"
    );
    let ms = |ns: u64| ns as f64 / 1e6;
    for (name, m) in result.get("methods").and_then(Value::as_obj).unwrap_or(&[]) {
        println!(
            "{:<16} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>12.3}",
            name,
            stat_field(m, "latency", "count"),
            ms(stat_field(m, "latency", "p50_ns")),
            ms(stat_field(m, "latency", "p95_ns")),
            ms(stat_field(m, "latency", "p99_ns")),
            ms(stat_field(m, "queue_wait", "p99_ns")),
        );
    }
    for (name, v) in result.get("gauges").and_then(Value::as_obj).unwrap_or(&[]) {
        println!("gauge {name} {v}");
    }
}

/// Renders a `stats` result as Prometheus text exposition. Hand-rolled —
/// the daemon speaks JSON; translation to scrape format is the client's
/// job, and the format is just `# TYPE` lines plus `name{labels} value`
/// samples (latencies in seconds, per convention).
fn render_stats_prometheus(result: &Value) -> String {
    let mut out = String::new();
    let methods = result.get("methods").and_then(Value::as_obj).unwrap_or(&[]);
    out.push_str("# TYPE pumpkin_requests_total counter\n");
    for (name, m) in methods {
        out.push_str(&format!(
            "pumpkin_requests_total{{method=\"{name}\"}} {}\n",
            stat_field(m, "latency", "count")
        ));
    }
    let secs = |ns: u64| ns as f64 / 1e9;
    for (family, block) in [
        ("pumpkin_request_latency_seconds", "latency"),
        ("pumpkin_request_queue_wait_seconds", "queue_wait"),
    ] {
        out.push_str(&format!("# TYPE {family} summary\n"));
        for (name, m) in methods {
            for (q, field) in [("0.5", "p50_ns"), ("0.95", "p95_ns"), ("0.99", "p99_ns")] {
                out.push_str(&format!(
                    "{family}{{method=\"{name}\",quantile=\"{q}\"}} {:.9}\n",
                    secs(stat_field(m, block, field))
                ));
            }
            let count = stat_field(m, block, "count");
            out.push_str(&format!(
                "{family}_sum{{method=\"{name}\"}} {:.9}\n",
                secs(stat_field(m, block, "mean_ns")) * count as f64
            ));
            out.push_str(&format!("{family}_count{{method=\"{name}\"}} {count}\n"));
        }
    }
    for (name, v) in result.get("gauges").and_then(Value::as_obj).unwrap_or(&[]) {
        out.push_str(&format!(
            "# TYPE pumpkin_serve_{name} gauge\npumpkin_serve_{name} {v}\n"
        ));
    }
    out
}

/// Maps a client-side failure to a distinct exit status, so scripts can
/// branch on *why* a call failed (`busy` → back off and retry, `deadline`
/// → raise the budget, version skew → upgrade) instead of parsing stderr.
fn client_exit_code(err: &pumpkin_serve::ClientError) -> ExitCode {
    use pumpkin_serve::ClientError;
    let code = match err {
        ClientError::Server { code, .. } => code.as_str(),
        ClientError::Protocol(_) => return ExitCode::from(20),
        ClientError::Io(_) => return ExitCode::from(21),
    };
    ExitCode::from(exit_status_for(code))
}

/// The server-code → exit-status map itself. Every code the server can
/// emit ([`pumpkin_serve::proto::code::ALL`]) has its own status here —
/// the audit test below fails the build of any server code left to the
/// catch-all — and 19 is reserved for codes newer than this client.
fn exit_status_for(code: &str) -> u8 {
    use pumpkin_serve::proto::code;
    match code {
        code::BUSY => 10,
        code::DEADLINE => 11,
        code::BAD_DIGEST => 12,
        code::BAD_PARAMS => 13,
        code::UNKNOWN_METHOD => 14,
        code::REPAIR_FAILED => 15,
        code::SHUTTING_DOWN => 16,
        code::OVERSIZED => 17,
        code::TRUNCATED => 24,
        code::PARSE => 18,
        code::AUTO_EXHAUSTED => EXIT_AUTO_EXHAUSTED,
        _ => 19,
    }
}

/// One-line human rendering for a failed call, with a hint where the
/// right reaction is obvious.
fn client_error_line(err: &pumpkin_serve::ClientError) -> String {
    use pumpkin_serve::proto::code;
    use pumpkin_serve::ClientError;
    let hint = match err {
        ClientError::Server { code, .. } => match code.as_str() {
            code::BUSY => " (server saturated; retry with backoff)",
            code::DEADLINE => " (deadline elapsed; raise --deadline-ms or the server budget)",
            code::SHUTTING_DOWN => " (server is draining; reconnect later)",
            code::BAD_DIGEST => " (payload corrupt in transit; resend)",
            _ => "",
        },
        _ => "",
    };
    format!("pumpkin client: {err}{hint}")
}

/// Exit status for a `hello` version mismatch (distinct from every
/// server-error status so scripts can tell skew from failure).
const EXIT_VERSION_SKEW: u8 = 22;

/// Exit status when an automatic search exhausts every candidate (the
/// `pumpkin auto` verb locally, or a `repair_auto` RPC via the client) —
/// scripts branch on it to pick up the minimized reproducer.
const EXIT_AUTO_EXHAUSTED: u8 = 23;

/// Negotiates with the server: calls `hello`, fails fast when the proto
/// or wire version disagrees with ours, and refuses servers that predate
/// the handshake. Returns the announced method list.
fn client_negotiate(client: &mut Client) -> Result<Vec<String>, (String, ExitCode)> {
    use pumpkin_serve::ClientError;
    let hello = match client.call("hello", Value::Obj(vec![])) {
        Ok(v) => v,
        Err(ClientError::Server { ref code, .. }) if code == "unknown_method" => {
            return Err((
                "server does not implement `hello`; it predates this client — upgrade pumpkind"
                    .into(),
                ExitCode::from(EXIT_VERSION_SKEW),
            ))
        }
        Err(e) => return Err((client_error_line(&e), client_exit_code(&e))),
    };
    let proto = hello.get("proto_version").and_then(Value::as_u64);
    if proto != Some(u64::from(pumpkin_serve::proto::PROTO_VERSION)) {
        return Err((
            format!(
                "protocol version mismatch: server speaks {:?}, this client speaks {}",
                proto,
                pumpkin_serve::proto::PROTO_VERSION
            ),
            ExitCode::from(EXIT_VERSION_SKEW),
        ));
    }
    let wire = hello.get("wire_version").and_then(Value::as_str);
    if wire != Some(pumpkin_wire::WIRE_TAG) {
        return Err((
            format!(
                "wire version mismatch: server speaks {:?}, this client speaks {}",
                wire,
                pumpkin_wire::WIRE_TAG
            ),
            ExitCode::from(EXIT_VERSION_SKEW),
        ));
    }
    Ok(hello
        .get("methods")
        .and_then(Value::as_arr)
        .map(|ms| {
            ms.iter()
                .filter_map(|m| m.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default())
}

fn client(argv: &[String]) -> ExitCode {
    let mut args = argv.iter();
    let mut connect: Option<String> = None;
    let mut verb: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                let Some(addr) = args.next() else {
                    eprintln!("--connect needs an address\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                connect = Some(addr.clone());
            }
            other => {
                verb = Some(other.to_string());
                break;
            }
        }
    }
    let (Some(addr), Some(verb)) = (connect, verb) else {
        eprintln!("client needs --connect ADDR and a verb\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut stats_format = "table";
    let (method, params) = match verb.as_str() {
        "ping" | "shutdown" | "hello" => (verb.clone(), Value::Obj(vec![])),
        "stats" => {
            match args.next().map(String::as_str) {
                Some("--json") => stats_format = "json",
                Some("--prometheus") => stats_format = "prometheus",
                None => {}
                Some(other) => {
                    eprintln!("unexpected stats argument `{other}`\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
            (verb.clone(), Value::Obj(vec![]))
        }
        "metrics" => {
            let canonical = args.next().map(String::as_str) == Some("--canonical");
            (
                verb.clone(),
                Value::Obj(vec![("canonical".into(), Value::Bool(canonical))]),
            )
        }
        "repair-module" => match client_lift_params(&mut args, false) {
            Ok(fields) => ("repair_module".to_string(), Value::Obj(fields)),
            Err(e) => {
                eprintln!("{e}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        },
        "explain" => match client_lift_params(&mut args, true) {
            Ok(fields) => ("explain".to_string(), Value::Obj(fields)),
            Err(e) => {
                eprintln!("{e}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        },
        "call" => {
            let Some(method) = args.next() else {
                eprintln!("call needs a method name\n{USAGE}");
                return ExitCode::FAILURE;
            };
            let params = match args.next() {
                Some(raw) => match Value::parse(raw) {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("bad params JSON: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => Value::Obj(vec![]),
            };
            (method.clone(), params)
        }
        other => {
            eprintln!("unknown client verb `{other}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Repair-family verbs negotiate first: a version-skewed server fails
    // fast (and distinctly) instead of mid-workload. The cheap control
    // verbs skip the extra round trip — `hello` *is* the negotiation, and
    // `ping`/`shutdown`/`metrics`/`call` must keep working against any
    // server for diagnostics.
    if matches!(verb.as_str(), "repair-module" | "explain") {
        match client_negotiate(&mut client) {
            Ok(methods) => {
                if !methods.is_empty() && !methods.iter().any(|m| m == &method) {
                    eprintln!("pumpkin client: server does not serve `{method}`");
                    return ExitCode::from(EXIT_VERSION_SKEW);
                }
            }
            Err((msg, code)) => {
                eprintln!("pumpkin client: {msg}");
                return code;
            }
        }
    }
    match client.call(&method, params) {
        Ok(result) => {
            if method == "stats" {
                match stats_format {
                    "json" => println!("{result}"),
                    "prometheus" => print!("{}", render_stats_prometheus(&result)),
                    _ => render_stats_table(&result),
                }
            } else {
                render_client_result(&method, &result);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", client_error_line(&e));
            client_exit_code(&e)
        }
    }
}

/// `pumpkin top`: a live operator view. Polls the daemon's `stats` RPC
/// and redraws a table of per-method request rate (from count deltas
/// between polls), latency percentiles, and the service gauges.
fn top(argv: &[String]) -> ExitCode {
    use std::collections::BTreeMap;
    use std::io::Write as _;
    use std::time::Instant;

    let mut connect: Option<String> = None;
    let mut interval_ms = 1000u64;
    let mut count = 0u64;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(addr) => connect = Some(addr.clone()),
                None => {
                    eprintln!("--connect needs an address\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--interval-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => interval_ms = n.max(1),
                None => {
                    eprintln!("--interval-ms needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--count" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => count = n,
                None => {
                    eprintln!("--count needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = connect else {
        eprintln!("top needs --connect ADDR\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut prev: BTreeMap<String, u64> = BTreeMap::new();
    let mut prev_at = Instant::now();
    let mut frames = 0u64;
    loop {
        let stats = match client.call("stats", Value::Obj(vec![])) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{}", client_error_line(&e));
                return client_exit_code(&e);
            }
        };
        let now = Instant::now();
        let dt = now.duration_since(prev_at).as_secs_f64().max(1e-9);
        if frames > 0 {
            // Redraw in place: clear the screen, cursor home.
            print!("\x1b[2J\x1b[H");
        }
        println!("pumpkind {addr} — stats every {interval_ms} ms (Ctrl-C to quit)");
        println!(
            "{:<16} {:>8} {:>8} {:>10} {:>10} {:>12}",
            "METHOD", "COUNT", "RATE/S", "P50_MS", "P99_MS", "QWAIT_P99_MS"
        );
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut current: BTreeMap<String, u64> = BTreeMap::new();
        for (name, m) in stats.get("methods").and_then(Value::as_obj).unwrap_or(&[]) {
            let total = stat_field(m, "latency", "count");
            let rate = if frames == 0 {
                0.0
            } else {
                (total.saturating_sub(prev.get(name).copied().unwrap_or(0))) as f64 / dt
            };
            println!(
                "{:<16} {:>8} {:>8.1} {:>10.3} {:>10.3} {:>12.3}",
                name,
                total,
                rate,
                ms(stat_field(m, "latency", "p50_ns")),
                ms(stat_field(m, "latency", "p99_ns")),
                ms(stat_field(m, "queue_wait", "p99_ns")),
            );
            current.insert(name.clone(), total);
        }
        let gauge = |name: &str| {
            stats
                .get("gauges")
                .and_then(|g| g.get(name))
                .and_then(Value::as_u64)
                .unwrap_or(0)
        };
        println!(
            "sessions {} | workers busy {} | queue hwm {} | busy {}+{} | slow {}",
            gauge("live_sessions"),
            gauge("workers_busy"),
            gauge("queue_depth_hwm"),
            gauge("busy_queue_full"),
            gauge("busy_session_cap"),
            gauge("slow_logged"),
        );
        let _ = std::io::stdout().flush();
        frames += 1;
        if count > 0 && frames >= count {
            return ExitCode::SUCCESS;
        }
        prev = current;
        prev_at = now;
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `pumpkin watch`: the edit→repair loop as a verb. Polls a vernacular
/// `.pi` file; on every change it rebuilds a fresh environment, loads the
/// file, and repairs the module *incrementally* — source digests are
/// diffed against the previous run's [`pumpkin_core::DigestMap`], only
/// the changed constants' downstream closure is re-lifted, and everything
/// else replays from the persist cache. Prints one
/// `incremental: changed=X replayed=Y skipped=Z` line per run.
fn watch(argv: &[String]) -> ExitCode {
    use pumpkin_core::{DigestMap, LiftState, NameMap, Repairer};
    use std::collections::HashSet;
    use std::io::Write as _;
    use std::time::SystemTime;

    let mut poll_ms = 250u64;
    let mut max_runs = 0u64;
    let mut jobs = 1usize;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut cache_max_bytes: Option<u64> = None;
    let mut swap = ("Old.list".to_string(), "New.list".to_string());
    let mut rename: Option<(String, String)> = None;
    let mut names_arg: Option<Vec<String>> = None;
    let mut path: Option<String> = None;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let number = |args: &mut std::slice::Iter<'_, String>| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| eprintln!("{arg} needs a number\n{USAGE}"))
        };
        match arg.as_str() {
            "--poll-ms" => match number(&mut args) {
                Ok(n) => poll_ms = n.max(1),
                Err(()) => return ExitCode::FAILURE,
            },
            "--max-runs" => match number(&mut args) {
                Ok(n) => max_runs = n,
                Err(()) => return ExitCode::FAILURE,
            },
            "--jobs" => match number(&mut args) {
                Ok(n) => jobs = (n as usize).max(1),
                Err(()) => return ExitCode::FAILURE,
            },
            "--cache-max-bytes" => match number(&mut args) {
                Ok(n) => cache_max_bytes = Some(n),
                Err(()) => return ExitCode::FAILURE,
            },
            "--cache-dir" => match args.next() {
                Some(v) => cache_dir = Some(v.into()),
                None => {
                    eprintln!("--cache-dir needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--swap" => match (args.next(), args.next()) {
                (Some(a), Some(b)) => swap = (a.clone(), b.clone()),
                _ => {
                    eprintln!("--swap needs two type names\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--rename" => match args.next().and_then(|v| v.split_once('=')) {
                Some((f, t)) => rename = Some((f.to_string(), t.to_string())),
                None => {
                    eprintln!("--rename needs From.=To.\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--names" => match args.next() {
                Some(list) => names_arg = Some(list.split(',').map(str::to_string).collect()),
                None => {
                    eprintln!("--names needs a comma-separated list\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("watch needs a .pi file to watch\n{USAGE}");
        return ExitCode::FAILURE;
    };
    // Replays need a persist cache that survives across runs; without an
    // explicit dir, use a per-process scratch one.
    let cache_dir = cache_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("pumpkin-watch-{}", std::process::id()))
    });
    let module_of = |n: &str| {
        n.rsplit_once('.')
            .map_or(String::new(), |(m, _)| format!("{m}."))
    };
    let (from, to) = rename.unwrap_or_else(|| (module_of(&swap.0), module_of(&swap.1)));

    println!(
        "watching {path} (poll every {poll_ms} ms; cache {})",
        cache_dir.display()
    );
    let _ = std::io::stdout().flush();
    let mut prev = DigestMap::new();
    let mut last_mtime: Option<SystemTime> = None;
    let mut runs = 0u64;
    loop {
        let mtime = std::fs::metadata(&path).and_then(|m| m.modified()).ok();
        if mtime.is_some() && mtime != last_mtime {
            last_mtime = mtime;
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("watch: cannot read {path}: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(poll_ms));
                    continue;
                }
            };
            // Fresh world per run: the standard library plus the watched
            // file's definitions. Incrementality lives entirely in the
            // digest snapshot and the persist cache, not in kept state.
            let mut env = pumpkin_stdlib::std_env();
            let baked: HashSet<String> = env
                .constants()
                .map(|d| d.name.as_str().to_string())
                .collect();
            if let Err(e) = pumpkin_lang::load_source(&mut env, &src) {
                eprintln!("watch: {path}: {e}");
                std::thread::sleep(std::time::Duration::from_millis(poll_ms));
                continue;
            }
            // Work list: the swap module (or --names), plus whatever the
            // file defines under the source prefix.
            let mut names: Vec<String> = names_arg.clone().unwrap_or_else(|| {
                pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            });
            for d in env.constants() {
                let n = d.name.as_str();
                if n.starts_with(&from) && !baked.contains(n) && !names.iter().any(|x| x == n) {
                    names.push(n.to_string());
                }
            }
            let lifting = match pumpkin_core::search::swap::configure(
                &mut env,
                &swap.0.as_str().into(),
                &swap.1.as_str().into(),
                NameMap::prefix(&from, &to),
            ) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("watch: configure failed: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(poll_ms));
                    continue;
                }
            };
            let borrowed: Vec<&str> = names.iter().map(String::as_str).collect();
            let mut st = LiftState::new();
            let result = Repairer::new(&lifting)
                .state(&mut st)
                .jobs(jobs)
                .persist_cache(&cache_dir)
                .cache_max_bytes(cache_max_bytes)
                .incremental(&prev)
                .run(&mut env, &borrowed);
            match result {
                Ok(report) => {
                    runs += 1;
                    println!(
                        "watch: run {runs}: repaired {} constants in {:.1} ms",
                        report.repaired.len(),
                        report.wall_ns as f64 / 1e6
                    );
                    if let Some(i) = report.incr {
                        println!("watch: incremental: {i}");
                    }
                    let _ = std::io::stdout().flush();
                    prev = DigestMap::capture(&env, &borrowed);
                    if max_runs > 0 && runs >= max_runs {
                        return ExitCode::SUCCESS;
                    }
                }
                Err(e) => eprintln!("watch: repair failed: {e}"),
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    }
}

/// `pumpkin auto`: the automatic repair search as a verb (DESIGN.md §18).
/// Loads a vernacular module and searches candidate configurations —
/// constructor-mapping permutations, eta/iota toggles, smart eliminators,
/// cache reuse — running each through the kernel until one repair checks.
/// When every candidate fails, the module is shrunk to a minimal failing
/// reproducer (`--emit-repro FILE.pi` writes it as standalone vernacular)
/// and the exit status is [`EXIT_AUTO_EXHAUSTED`].
fn auto(argv: &[String]) -> ExitCode {
    use pumpkin_core::{AutoPolicy, NameMap, RepairError, Repairer};

    let mut policy = AutoPolicy::default();
    let mut emit_repro: Option<String> = None;
    let mut jobs = 1usize;
    let mut swap = ("Old.list".to_string(), "New.list".to_string());
    let mut rename: Option<(String, String)> = None;
    let mut names_arg: Option<Vec<String>> = None;
    let mut path: Option<String> = None;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let number = |args: &mut std::slice::Iter<'_, String>| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| eprintln!("{arg} needs a number\n{USAGE}"))
        };
        match arg.as_str() {
            "--budget" => match number(&mut args) {
                Ok(n) => policy.budget = Some((n as usize).max(1)),
                Err(()) => return ExitCode::FAILURE,
            },
            "--seed" => match number(&mut args) {
                Ok(n) => policy.seed = n,
                Err(()) => return ExitCode::FAILURE,
            },
            "--jobs" => match number(&mut args) {
                Ok(n) => jobs = (n as usize).max(1),
                Err(()) => return ExitCode::FAILURE,
            },
            "--no-failure-cache" => policy.use_failure_cache = false,
            "--emit-repro" => match args.next() {
                Some(v) => emit_repro = Some(v.clone()),
                None => {
                    eprintln!("--emit-repro needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--swap" => match (args.next(), args.next()) {
                (Some(a), Some(b)) => swap = (a.clone(), b.clone()),
                _ => {
                    eprintln!("--swap needs two type names\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--rename" => match args.next().and_then(|v| v.split_once('=')) {
                Some((f, t)) => rename = Some((f.to_string(), t.to_string())),
                None => {
                    eprintln!("--rename needs From.=To.\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--names" => match args.next() {
                Some(list) => names_arg = Some(list.split(',').map(str::to_string).collect()),
                None => {
                    eprintln!("--names needs a comma-separated list\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("auto needs a .pi module to repair\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let module_of = |n: &str| {
        n.rsplit_once('.')
            .map_or(String::new(), |(m, _)| format!("{m}."))
    };
    let (from, to) = rename.unwrap_or_else(|| (module_of(&swap.0), module_of(&swap.1)));
    // Work list: the swap module (or --names); constants the file defines
    // under the source prefix join automatically inside the driver.
    let names: Vec<String> = names_arg.unwrap_or_else(|| {
        pumpkin_stdlib::swap::OLD_MODULE_CONSTANTS
            .iter()
            .map(|s| s.to_string())
            .collect()
    });
    let mut env = pumpkin_stdlib::std_env();
    let borrowed: Vec<&str> = names.iter().map(String::as_str).collect();
    let (search, result) = Repairer::auto(policy)
        .types(
            swap.0.as_str(),
            swap.1.as_str(),
            NameMap::prefix(&from, &to),
        )
        .source(src.as_str())
        .jobs(jobs)
        .run(&mut env, &borrowed);
    println!("{}", search.summary());
    match result {
        Ok(report) => {
            for (f, t) in &report.repaired {
                println!("repaired {f} -> {t}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("auto: {e}");
            if let Some(r) = &search.reproducer {
                if let Some(out) = emit_repro {
                    // Render against a world holding the module's decls;
                    // the source must load under *some* configuration for
                    // the names to resolve — fall back to comments if not.
                    let mut scratch = pumpkin_stdlib::std_env();
                    let _ = pumpkin_core::smartelim::packed_list(&mut scratch);
                    let _ = pumpkin_lang::load_source(&mut scratch, &src);
                    if let Err(io) = std::fs::write(&out, r.to_pi(&scratch)) {
                        eprintln!("cannot write {out}: {io}");
                        return ExitCode::FAILURE;
                    }
                    println!(
                        "auto: wrote reproducer ({} of {} constants) to {out}",
                        r.names.len(),
                        r.original
                    );
                }
            }
            if matches!(e, RepairError::AutoExhausted { .. }) {
                ExitCode::from(EXIT_AUTO_EXHAUSTED)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn loadgen(argv: &[String]) -> ExitCode {
    use pumpkin_pi::loadgen::{LoadgenConfig, Mode};
    let mut cfg = LoadgenConfig::default();
    let mut json_out: Option<String> = None;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        let value = |args: &mut std::slice::Iter<'_, String>| {
            args.next().cloned().ok_or_else(|| {
                eprintln!("{arg} needs a value\n{USAGE}");
            })
        };
        let number = |args: &mut std::slice::Iter<'_, String>| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| {
                    eprintln!("{arg} needs a number\n{USAGE}");
                })
        };
        let result = match arg.as_str() {
            "--connect" => value(&mut args).map(|v| cfg.connect = Some(v)),
            "--json" => value(&mut args).map(|v| json_out = Some(v)),
            "--mode" => match value(&mut args).as_deref() {
                Ok("closed") => {
                    cfg.mode = Mode::Closed;
                    Ok(())
                }
                Ok("open") => {
                    cfg.mode = Mode::Open;
                    Ok(())
                }
                Ok(other) => {
                    eprintln!("--mode must be closed or open, not `{other}`\n{USAGE}");
                    Err(())
                }
                Err(()) => Err(()),
            },
            "--clients" => number(&mut args).map(|n| cfg.clients = (n as usize).max(1)),
            "--requests" => number(&mut args).map(|n| cfg.requests = (n as usize).max(1)),
            "--duration-ms" => number(&mut args).map(|n| cfg.duration_ms = n.max(1)),
            "--seed" => number(&mut args).map(|n| cfg.seed = n),
            "--workers" => number(&mut args).map(|n| cfg.workers = (n as usize).max(1)),
            "--queue-depth" => number(&mut args).map(|n| cfg.queue_depth = (n as usize).max(1)),
            "--jobs" => number(&mut args).map(|n| cfg.jobs = (n as usize).max(1)),
            "--trials" => number(&mut args).map(|n| cfg.trials = (n as usize).max(1)),
            "--server-stats" => {
                cfg.server_stats = true;
                Ok(())
            }
            "--touch-rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if (0.0..=1.0).contains(&r) => {
                    cfg.touch_rate = r;
                    Ok(())
                }
                _ => {
                    eprintln!("--touch-rate needs a number in [0, 1]\n{USAGE}");
                    Err(())
                }
            },
            "--fail-rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if (0.0..=1.0).contains(&r) => {
                    cfg.fail_rate = r;
                    Ok(())
                }
                _ => {
                    eprintln!("--fail-rate needs a number in [0, 1]\n{USAGE}");
                    Err(())
                }
            },
            "--rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => {
                    cfg.rate = r;
                    Ok(())
                }
                _ => {
                    eprintln!("--rate needs a positive number\n{USAGE}");
                    Err(())
                }
            },
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                Err(())
            }
        };
        if result.is_err() {
            return ExitCode::FAILURE;
        }
    }
    match pumpkin_pi::loadgen::run(&cfg) {
        Ok(report) => {
            println!("{}", report.summary());
            if let Some(path) = json_out {
                if let Err(e) = std::fs::write(&path, report.to_json_lines()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("loadgen: wrote {path}");
            }
            if report.completed == 0 {
                eprintln!("loadgen: no request completed");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

fn trace_report(argv: &[String]) -> ExitCode {
    use pumpkin_core::trace::report;
    let mut lint = false;
    let mut top_k = 5usize;
    let mut files: Vec<&String> = Vec::new();
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lint" => lint = true,
            "--top" => {
                let Some(k) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--top needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                top_k = k;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() || files.len() > 2 {
        eprintln!("trace-report takes one or two trace files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut texts = Vec::new();
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(s) => texts.push(s),
            Err(e) => {
                eprintln!("cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if lint {
        let mut violations = 0;
        for (f, text) in files.iter().zip(&texts) {
            for v in report::lint(text) {
                println!("{f}: {v}");
                violations += 1;
            }
        }
        println!("{violations} violation(s)");
        return if violations == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let parsed: Vec<_> = texts.iter().map(|t| report::parse_lines(t)).collect();
    for (f, p) in files.iter().zip(&parsed) {
        for (line, err) in &p.errors {
            eprintln!("{f}:{line}: skipping malformed line: {err}");
        }
    }
    match parsed.as_slice() {
        [one] => print!("{}", report::render(&one.events, top_k)),
        [a, b] => print!("{}", report::diff(&a.events, &b.events, top_k)),
        _ => unreachable!(),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("trace-report") {
        return trace_report(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return serve(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("client") {
        return client(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("top") {
        return top(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("watch") {
        return watch(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("auto") {
        return auto(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("loadgen") {
        return loadgen(&argv[1..]);
    }
    let mut session = Session::new();
    let mut path: Option<String> = None;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                session.set_jobs(n);
            }
            "--trace" => {
                let Some(file) = args.next() else {
                    eprintln!("--trace needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                session.set_trace_path(file);
            }
            "--metrics" => session.set_show_metrics(true),
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let script = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if run_script(&mut session, &script) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Audits the client's error-code → exit-status map against the full
    /// server code set: every code the server can emit must map to its
    /// own status, never the catch-all — so scripts can branch on *which*
    /// failure happened, and a new server code cannot ship without a
    /// distinct client status.
    #[test]
    fn every_server_error_code_has_a_distinct_exit_status() {
        use std::collections::HashMap;
        let mut seen: HashMap<u8, &str> = HashMap::new();
        for code in pumpkin_serve::proto::code::ALL {
            let status = exit_status_for(code);
            assert_ne!(
                status, 19,
                "server code `{code}` fell through to the unknown-code catch-all; \
                 give it its own exit status"
            );
            if let Some(prev) = seen.insert(status, code) {
                panic!("codes `{prev}` and `{code}` share exit status {status}");
            }
        }
        // The statuses reserved for client-side failures stay distinct
        // from every server-code status.
        for reserved in [19, 20, 21, EXIT_VERSION_SKEW] {
            assert!(
                !seen.contains_key(&reserved),
                "exit status {reserved} is reserved for client-side failures"
            );
        }
        assert_eq!(exit_status_for("some_future_code"), 19);
    }

    #[test]
    fn auto_exhausted_replies_map_to_the_auto_exit_status() {
        let err = pumpkin_serve::ClientError::Server {
            code: pumpkin_serve::proto::code::AUTO_EXHAUSTED.to_string(),
            message: "every candidate failed".into(),
            data: None,
        };
        assert_eq!(client_exit_code(&err), ExitCode::from(EXIT_AUTO_EXHAUSTED));
    }
}
