//! `pumpkin` — a command-line driver for the repair engine.
//!
//! Usage: `pumpkin <script.pi | ->`. See [`pumpkin_pi::cli`] for the
//! directive reference and `examples/scripts/` for walkthroughs.

use std::io::Read;
use std::process::ExitCode;

use pumpkin_pi::cli::{run_script, Session};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: pumpkin <script.pi | ->");
        return ExitCode::FAILURE;
    };
    let script = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let mut session = Session::new();
    if run_script(&mut session, &script) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
