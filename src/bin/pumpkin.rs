//! `pumpkin` — a command-line driver for the repair engine.
//!
//! Usage: `pumpkin [--jobs N] [--trace out.jsonl] [--metrics] <script.pi | ->`.
//! See [`pumpkin_pi::cli`] for the directive reference and
//! `examples/scripts/` for walkthroughs.
//!
//! * `--jobs N` — worker cap for the repair commands (0 = auto).
//! * `--trace out.jsonl` — write each repair command's structured event
//!   stream as JSON lines (schema in DESIGN.md §11).
//! * `--metrics` — print the derived counters/histograms after each
//!   repair command.
//!
//! A second mode analyzes traces offline (no script, no environment):
//! `pumpkin trace-report [--lint] [--top K] <file.jsonl> [file2.jsonl]`.
//! One file renders the full report (critical path, hottest lifts, cache
//! behavior per constant, provenance summary); two files render a
//! structural diff; `--lint` validates the file(s) against the schema and
//! exits nonzero on violations.

use std::io::Read;
use std::process::ExitCode;

use pumpkin_pi::cli::{run_script, Session};

const USAGE: &str = "usage: pumpkin [--jobs N] [--trace out.jsonl] [--metrics] <script.pi | ->\n\
                     \x20      pumpkin trace-report [--lint] [--top K] <file.jsonl> [file2.jsonl]";

fn trace_report(argv: &[String]) -> ExitCode {
    use pumpkin_core::trace::report;
    let mut lint = false;
    let mut top_k = 5usize;
    let mut files: Vec<&String> = Vec::new();
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lint" => lint = true,
            "--top" => {
                let Some(k) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--top needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                top_k = k;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() || files.len() > 2 {
        eprintln!("trace-report takes one or two trace files\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut texts = Vec::new();
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(s) => texts.push(s),
            Err(e) => {
                eprintln!("cannot read {f}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if lint {
        let mut violations = 0;
        for (f, text) in files.iter().zip(&texts) {
            for v in report::lint(text) {
                println!("{f}: {v}");
                violations += 1;
            }
        }
        println!("{violations} violation(s)");
        return if violations == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let parsed: Vec<_> = texts.iter().map(|t| report::parse_lines(t)).collect();
    for (f, p) in files.iter().zip(&parsed) {
        for (line, err) in &p.errors {
            eprintln!("{f}:{line}: skipping malformed line: {err}");
        }
    }
    match parsed.as_slice() {
        [one] => print!("{}", report::render(&one.events, top_k)),
        [a, b] => print!("{}", report::diff(&a.events, &b.events, top_k)),
        _ => unreachable!(),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("trace-report") {
        return trace_report(&argv[1..]);
    }
    let mut session = Session::new();
    let mut path: Option<String> = None;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                session.set_jobs(n);
            }
            "--trace" => {
                let Some(file) = args.next() else {
                    eprintln!("--trace needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                session.set_trace_path(file);
            }
            "--metrics" => session.set_show_metrics(true),
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let script = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if run_script(&mut session, &script) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
