//! `pumpkin` — a command-line driver for the repair engine.
//!
//! Usage: `pumpkin [--jobs N] [--trace out.jsonl] [--metrics] <script.pi | ->`.
//! See [`pumpkin_pi::cli`] for the directive reference and
//! `examples/scripts/` for walkthroughs.
//!
//! * `--jobs N` — worker cap for the repair commands (0 = auto).
//! * `--trace out.jsonl` — write each repair command's structured event
//!   stream as JSON lines (schema in DESIGN.md §11).
//! * `--metrics` — print the derived counters/histograms after each
//!   repair command.

use std::io::Read;
use std::process::ExitCode;

use pumpkin_pi::cli::{run_script, Session};

const USAGE: &str = "usage: pumpkin [--jobs N] [--trace out.jsonl] [--metrics] <script.pi | ->";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut session = Session::new();
    let mut path: Option<String> = None;
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                session.set_jobs(n);
            }
            "--trace" => {
                let Some(file) = args.next() else {
                    eprintln!("--trace needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                session.set_trace_path(file);
            }
            "--metrics" => session.set_show_metrics(true),
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let script = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if run_script(&mut session, &script) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
