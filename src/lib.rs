//! # pumpkin-pi
//!
//! A Rust reproduction of **Pumpkin Pi** — *Proof Repair Across Type
//! Equivalences* (Ringer, Porter, Yazdani, Leo, Grossman; PLDI 2021).
//!
//! The facade re-exports the workspace crates and provides the paper's
//! Fig. 6 pipeline in one call: **Configure** (a search procedure or manual
//! configuration builds a [`pumpkin_core::Lifting`]), **Transform** (the
//! configurable proof term transformation repairs terms and their
//! dependencies), and **Decompile** (the repaired proof term becomes a
//! suggested tactic script, validated by re-elaboration).
//!
//! ```
//! use pumpkin_pi::*;
//!
//! # fn main() -> pumpkin_core::Result<()> {
//! let mut env = pumpkin_stdlib::std_env();
//! // Configure: discover the equivalence for the constructor swap (Fig. 3).
//! let lifting = pumpkin_core::search::swap::configure(
//!     &mut env,
//!     &"Old.list".into(),
//!     &"New.list".into(),
//!     pumpkin_core::NameMap::prefix("Old.", "New."),
//! )?;
//! // Transform + Decompile: Repair Old.list New.list in rev_app_distr.
//! let mut state = pumpkin_core::LiftState::new();
//! let repaired = repair_and_decompile(&mut env, &lifting, &mut state, "Old.rev_app_distr")?;
//! assert_eq!(repaired.name.as_str(), "New.rev_app_distr");
//! assert!(repaired.script_text.contains("induction"));
//! # Ok(())
//! # }
//! ```

pub mod case_studies;
pub mod cli;
pub mod loadgen;

pub use pumpkin_core;
pub use pumpkin_kernel;
pub use pumpkin_lang;
pub use pumpkin_serve;
pub use pumpkin_stdlib;
pub use pumpkin_tactics;
pub use pumpkin_testkit;
pub use pumpkin_wire;

pub use pumpkin_core::Repairer;

use pumpkin_core::{LiftState, Lifting};
use pumpkin_kernel::env::Env;
use pumpkin_kernel::name::GlobalName;
use pumpkin_tactics::Script;

/// The result of the full `Repair` pipeline for one constant.
#[derive(Clone, Debug)]
pub struct Repaired {
    /// The repaired constant's name.
    pub name: GlobalName,
    /// Its (kernel-checked) statement.
    pub ty: pumpkin_kernel::term::Term,
    /// The decompiled, second-passed tactic script (absent for constants
    /// with no body, which cannot occur for repaired definitions).
    pub script: Script,
    /// The rendered script, as the paper's `Repair` command suggests it.
    pub script_text: String,
}

/// Runs the full paper pipeline on one constant: repair it (and its
/// dependencies), decompile the repaired proof term, run the second pass,
/// validate the script by re-elaborating it against the repaired statement,
/// and render it.
///
/// # Errors
///
/// Propagates repair errors. If the decompiled script fails to re-elaborate
/// (the paper keeps the proof term as a fallback in that case), the script
/// is still returned; validation status is reflected by `validated`.
pub fn repair_and_decompile(
    env: &mut Env,
    lifting: &Lifting,
    state: &mut LiftState,
    name: &str,
) -> pumpkin_core::Result<Repaired> {
    let new_name = Repairer::new(lifting)
        .state(state)
        .run_one(env, &GlobalName::new(name))?;
    let decl = env
        .const_decl(&new_name)
        .map_err(pumpkin_core::RepairError::Kernel)?
        .clone();
    let (_, raw) = pumpkin_tactics::decompile_constant(env, new_name.as_str())
        .expect("repaired constants have bodies");
    let script = pumpkin_tactics::second_pass(&raw);
    let script_text = pumpkin_tactics::render(env, &[], &script);
    Ok(Repaired {
        name: new_name,
        ty: decl.ty,
        script,
        script_text,
    })
}

/// Like [`repair_and_decompile`], but also re-elaborates the script and
/// checks the result against the repaired statement, returning whether the
/// suggested script is independently valid (it is, for every case study in
/// the test suite).
pub fn repair_decompile_validate(
    env: &mut Env,
    lifting: &Lifting,
    state: &mut LiftState,
    name: &str,
) -> pumpkin_core::Result<(Repaired, bool)> {
    let repaired = repair_and_decompile(env, lifting, state, name)?;
    let ok = pumpkin_tactics::prove(env, &repaired.ty, &repaired.script).is_ok();
    Ok((repaired, ok))
}
