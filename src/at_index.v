
Definition pack : forall (T : Type 1) (n : nat), vector T n -> sig_vector T :=
  fun (T : Type 1) (n : nat) (v : vector T n) =>
    existT nat (fun (m : nat) => vector T m) n v.

(* The recomputed length of a packed vector is its index. *)
Definition sig_length_eq : forall (T : Type 1) (s : sig_vector T),
    eq nat (Sig.length T s) (projT1 nat (fun (m : nat) => vector T m) s) :=
  fun (T : Type 1) (s : sig_vector T) =>
    list_sig.dep_elim T
      (fun (x : sig_vector T) =>
        eq nat (Sig.length T x) (projT1 nat (fun (m : nat) => vector T m) x))
      (eq_refl nat O)
      (fun (t : T) (s' : sig_vector T)
           (ih : eq nat (Sig.length T (list_sig.eta T s'))
                        (projT1 nat (fun (m : nat) => vector T m) (list_sig.eta T s'))) =>
        f_equal nat nat S
          (Sig.length T s')
          (projT1 nat (fun (m : nat) => vector T m) s')
          ih)
      s.

(* The index invariant for zip_with over packed vectors at index n. *)
Definition zipwith_index : forall (A : Type 1) (B : Type 1) (n : nat)
    (v1 : vector A n) (v2 : vector B n),
    eq nat
      (projT1 nat (fun (m : nat) => vector (prod A B) m)
        (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2)))
      n :=
  fun (A : Type 1) (B : Type 1) (n : nat) (v1 : vector A n) (v2 : vector B n) =>
    eq_trans nat
      (projT1 nat (fun (m : nat) => vector (prod A B) m)
        (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2)))
      (Sig.length (prod A B)
        (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2)))
      n
      (eq_sym nat
        (Sig.length (prod A B)
          (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2)))
        (projT1 nat (fun (m : nat) => vector (prod A B) m)
          (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2)))
        (sig_length_eq (prod A B)
          (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2))))
      (Sig.zip_with_length A B (prod A B) (pair A B) (pack A n v1) (pack B n v2) n
        (sig_length_eq A (pack A n v1))
        (sig_length_eq B (pack B n v2))).

Definition vzip_with : forall (A : Type 1) (B : Type 1) (n : nat),
    vector A n -> vector B n -> vector (prod A B) n :=
  fun (A : Type 1) (B : Type 1) (n : nat) (v1 : vector A n) (v2 : vector B n) =>
    unpack_f (prod A B) n
      (existT (sig_vector (prod A B))
        (fun (s : sig_vector (prod A B)) =>
          eq nat (projT1 nat (fun (m : nat) => vector (prod A B) m) s) n)
        (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2))
        (zipwith_index A B n v1 v2)).

(* vzip's invariant is chosen as the transport of vzip_with's along the
   repaired Sig.zip_with_is_zip — the proof obligation separation that
   makes the final lemma automatic. *)
Definition vzip : forall (A : Type 1) (B : Type 1) (n : nat),
    vector A n -> vector B n -> vector (prod A B) n :=
  fun (A : Type 1) (B : Type 1) (n : nat) (v1 : vector A n) (v2 : vector B n) =>
    unpack_f (prod A B) n
      (existT (sig_vector (prod A B))
        (fun (s : sig_vector (prod A B)) =>
          eq nat (projT1 nat (fun (m : nat) => vector (prod A B) m) s) n)
        (Sig.zip A B (pack A n v1) (pack B n v2))
        (eq_rect (sig_vector (prod A B))
          (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2))
          (fun (Z : sig_vector (prod A B)) =>
            eq nat (projT1 nat (fun (m : nat) => vector (prod A B) m) Z) n)
          (zipwith_index A B n v1 v2)
          (Sig.zip A B (pack A n v1) (pack B n v2))
          (Sig.zip_with_is_zip A B (pack A n v1) (pack B n v2)))).

(* The paper's final lemma (section 6.2.2): zip_with pair = zip over
   vectors at a particular length. One equality elimination suffices. *)
Definition vzip_with_is_zip : forall (A : Type 1) (B : Type 1) (n : nat)
    (v1 : vector A n) (v2 : vector B n),
    eq (vector (prod A B) n)
       (vzip_with A B n v1 v2)
       (vzip A B n v1 v2) :=
  fun (A : Type 1) (B : Type 1) (n : nat) (v1 : vector A n) (v2 : vector B n) =>
    elim (Sig.zip_with_is_zip A B (pack A n v1) (pack B n v2))
        : eq (sig_vector (prod A B))
             (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2))
      return (fun (Z : sig_vector (prod A B))
          (e : eq (sig_vector (prod A B))
                 (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2))
                 Z) =>
        eq (vector (prod A B) n)
           (vzip_with A B n v1 v2)
           (unpack_f (prod A B) n
             (existT (sig_vector (prod A B))
               (fun (s : sig_vector (prod A B)) =>
                 eq nat (projT1 nat (fun (m : nat) => vector (prod A B) m) s) n)
               Z
               (eq_rect (sig_vector (prod A B))
                 (Sig.zip_with A B (prod A B) (pair A B) (pack A n v1) (pack B n v2))
                 (fun (Z0 : sig_vector (prod A B)) =>
                   eq nat (projT1 nat (fun (m : nat) => vector (prod A B) m) Z0) n)
                 (zipwith_index A B n v1 v2)
                 Z
                 e))))
    with
    | eq_refl (vector (prod A B) n) (vzip_with A B n v1 v2)
    end.
