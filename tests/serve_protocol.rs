//! Golden-file wire-protocol transcript.
//!
//! Drives a [`Session`] directly (no sockets — framing has its own
//! tests) through a fixed request sequence and compares the full
//! `C:`/`S:` transcript byte-for-byte against
//! `tests/golden/serve_transcript.txt`. Every request opts into
//! `"deterministic": true` where timing would otherwise leak in, so the
//! transcript is stable across runs, machines, and debug/release.
//!
//! Regenerate after an intentional protocol change with
//! `PUMPKIN_UPDATE_GOLDEN=1 cargo test --test serve_protocol`.

use std::sync::{Arc, Mutex};

use pumpkin_kernel::term::Term;
use pumpkin_serve::Session;
use pumpkin_wire::{term_to_envelope, LiftSpec};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/serve_transcript.txt"
);

fn requests() -> Vec<String> {
    let spec = LiftSpec::swap("Old.list", "New.list", "Old.", "New.").to_value();
    // S (S O) + O — small enough to read, big enough to exercise the
    // digest-verified envelope.
    let two = Term::app(
        Term::construct("nat", 1),
        [Term::app(
            Term::construct("nat", 1),
            [Term::construct("nat", 0)],
        )],
    );
    let sum = Term::app(Term::const_("add"), [two, Term::construct("nat", 0)]);
    vec![
        r#"{"id":1,"method":"ping"}"#.to_string(),
        format!(
            r#"{{"id":2,"method":"repair","params":{{"lifting":{spec},"name":"Old.rev","deterministic":true}}}}"#
        ),
        format!(
            r#"{{"id":3,"method":"repair_module","params":{{"lifting":{spec},"names":["Old.rev","Old.app","Old.rev_involutive"],"deterministic":true}}}}"#
        ),
        format!(r#"{{"id":4,"method":"explain","params":{{"lifting":{spec},"name":"Old.rev"}}}}"#),
        format!(
            r#"{{"id":5,"method":"trace_report","params":{{"lifting":{spec},"names":["Old.rev"],"deterministic":true}}}}"#
        ),
        format!(
            r#"{{"id":6,"method":"eval","params":{{"term":{}}}}}"#,
            term_to_envelope(&sum)
        ),
        r#"{"id":7,"method":"metrics","params":{"canonical":true}}"#.to_string(),
        // One frame, several repairs: each results entry must be the
        // byte-identical standalone reply with a null id.
        format!(
            r#"{{"id":8,"method":"repair_batch","params":{{"lifting":{spec},"batch":[{{"name":"Old.rev","deterministic":true}},{{"names":["Old.app","Old.rev_involutive"],"deterministic":true}}]}}}}"#
        ),
        // Error paths are part of the protocol surface too.
        r#"{"id":9,"method":"repair_batch","params":{"batch":[]}}"#.to_string(),
        r#"{"id":10,"method":"repair","params":{"name":"Old.rev"}}"#.to_string(),
        r#"{"id":11,"method":"no_such_method"}"#.to_string(),
        r#"not json"#.to_string(),
        // The automatic search: a clean work list is accepted by the
        // first checked candidate, and the reply embeds the AutoReport
        // wire block (deterministic mode zeroes every cost).
        format!(
            r#"{{"id":12,"method":"repair_auto","params":{{"lifting":{spec},"names":["Old.rev"],"deterministic":true}}}}"#
        ),
        // A name collision no candidate can repair. Cache probing off:
        // the whole enumeration runs and every failure is recorded
        // process-wide; the error reply carries the full accounting as
        // structured data.
        format!(
            r#"{{"id":13,"method":"repair_auto","params":{{"lifting":{spec},"source":"Definition New.transcript_clash : nat := O.\nDefinition Old.transcript_clash : forall (T : Type 1), Old.list T -> Old.list T := fun (T : Type 1) (l : Old.list T) => l.","failure_cache":false,"minimize":false,"deterministic":true}}}}"#
        ),
        // The same module with cache probing on: the failures recorded by
        // the previous request skip the entire enumeration (tried=0) —
        // deterministic because the record always precedes the probe
        // within one transcript.
        format!(
            r#"{{"id":14,"method":"repair_auto","params":{{"lifting":{spec},"source":"Definition New.transcript_clash : nat := O.\nDefinition Old.transcript_clash : forall (T : Type 1), Old.list T -> Old.list T := fun (T : Type 1) (l : Old.list T) => l.","minimize":false,"deterministic":true}}}}"#
        ),
        // A bare session records no latency (that is the server layer's
        // job), so this reply is deterministic: empty method map, zeroed
        // totals, and only deterministic gauge traffic.
        r#"{"id":15,"method":"stats"}"#.to_string(),
        r#"{"id":16,"method":"shutdown"}"#.to_string(),
    ]
}

fn transcript() -> String {
    let metrics = Arc::new(Mutex::new(pumpkin_core::trace::Metrics::new()));
    let mut session = Session::new(pumpkin_stdlib::std_env(), 1, None, metrics);
    let mut out = String::new();
    for line in requests() {
        let (reply, _) = session.handle_line(&line);
        out.push_str("C: ");
        out.push_str(&line);
        out.push('\n');
        out.push_str("S: ");
        out.push_str(&reply);
        out.push('\n');
    }
    out
}

#[test]
fn transcript_matches_golden_file() {
    let got = transcript();
    if std::env::var_os("PUMPKIN_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!(
            "cannot read {GOLDEN}: {e}\n\
             (run once with PUMPKIN_UPDATE_GOLDEN=1 to create it)"
        )
    });
    if got != want {
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                panic!(
                    "transcript diverges from golden at line {}:\n got: {g}\nwant: {w}\n\
                     (PUMPKIN_UPDATE_GOLDEN=1 regenerates after intentional changes)",
                    i + 1
                );
            }
        }
        panic!(
            "transcript length changed: got {} lines, want {}",
            got.lines().count(),
            want.lines().count()
        );
    }
}

/// The transcript is a pure function of the request list — two sessions
/// in the same process agree byte for byte.
#[test]
fn transcript_is_reproducible_within_a_process() {
    assert_eq!(transcript(), transcript());
}
