//! Observability contract tests: the JSON-lines wire schema (golden file),
//! trace determinism across worker counts, and event round-tripping.
//!
//! Golden-file policy: timestamps (`t_ns`, `dur_ns`) and worker ids are
//! zeroed before comparison, so the golden file pins the *event structure*
//! (kinds, payloads, order) without pinning wall-clock noise. Regenerate
//! with `PUMPKIN_UPDATE_GOLDEN=1 cargo test -p pumpkin-pi --test
//! trace_observability` after an intentional schema or pipeline change.

use std::collections::BTreeMap;
use std::path::PathBuf;

use pumpkin_pi::case_studies;
use pumpkin_pi::pumpkin_core::trace::{Event, EventKind};
use pumpkin_pi::pumpkin_core::{self, NameMap, Repairer};
use pumpkin_pi::pumpkin_stdlib as stdlib;

fn normalize(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .map(|e| Event {
            t_ns: 0,
            dur_ns: 0,
            worker: 0,
            kind: e.kind.clone(),
        })
        .collect()
}

fn normalized_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in normalize(events) {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// A multiset of the scheduler- and lift-layer events: everything above
/// the kernel caches. Kernel whnf/conv/cache-probe counts legitimately
/// vary with the worker count (each worker forks its own memo tables, so
/// partitioning changes hit/miss patterns and the recursion they prune);
/// the semantic layer must not.
fn semantic_multiset(events: &[Event]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for e in events {
        let key = match &e.kind {
            EventKind::WaveStart { wave, width } => format!("wave_start {wave} {width}"),
            EventKind::Wave { wave, width } => format!("wave {wave} {width}"),
            EventKind::WaveMerge { wave } => format!("wave_merge {wave}"),
            EventKind::LiftConstant { name } => format!("lift {name}"),
            EventKind::Rollback { dropped } => format!("rollback {dropped}"),
            // Run carries the jobs count, which differs by construction;
            // kernel events vary with cache partitioning (see above).
            _ => continue,
        };
        *m.entry(key).or_insert(0) += 1;
    }
    m
}

fn traced_rev_repair() -> Vec<Event> {
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let report = Repairer::new(&lifting)
        .trace(true)
        .run(&mut env, &["Old.rev"])
        .unwrap();
    report.trace
}

#[test]
fn golden_jsonl_schema_is_stable() {
    let got = normalized_jsonl(&traced_rev_repair());
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_swap_rev.jsonl");
    if std::env::var_os("PUMPKIN_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with PUMPKIN_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if got != want {
        let diff_at = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
        panic!(
            "trace schema drifted from {} at line {} \
             (got {} lines, want {}); first differing line:\n  got:  {}\n  want: {}\n\
             regenerate with PUMPKIN_UPDATE_GOLDEN=1 if the change is intentional",
            path.display(),
            diff_at + 1,
            got.lines().count(),
            want.lines().count(),
            got.lines().nth(diff_at).unwrap_or("<eof>"),
            want.lines().nth(diff_at).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn events_round_trip_through_json() {
    let events = traced_rev_repair();
    assert!(!events.is_empty());
    for e in &events {
        let line = e.to_json();
        assert_eq!(
            Event::from_json(&line).as_ref(),
            Some(e),
            "round-trip failed for: {line}"
        );
    }
}

#[test]
fn single_worker_trace_is_reproducible() {
    // jobs=1 runs everything on the master thread with one cache, so the
    // full event stream — kernel probes included — must be identical
    // modulo timestamps from run to run.
    let mut env_a = stdlib::std_env();
    let mut env_b = stdlib::std_env();
    let a = case_studies::swap_list_module_traced(&mut env_a, 1).unwrap();
    let b = case_studies::swap_list_module_traced(&mut env_b, 1).unwrap();
    assert_eq!(normalize(&a.trace), normalize(&b.trace));
    assert_eq!(a.repaired, b.repaired);
}

#[test]
fn semantic_events_agree_across_worker_counts() {
    let mut runs = Vec::new();
    for jobs in [1usize, 2, 4] {
        let mut env = stdlib::std_env();
        let report = case_studies::swap_list_module_traced(&mut env, jobs).unwrap();
        assert!(
            report
                .trace
                .iter()
                .any(|e| matches!(e.kind, EventKind::Run { jobs: j } if j == jobs as u32)),
            "jobs={jobs} run span missing"
        );
        let mut repaired = report.repaired.clone();
        repaired.sort();
        runs.push((jobs, semantic_multiset(&report.trace), repaired));
    }
    let (_, base_events, base_repaired) = &runs[0];
    for (jobs, events, repaired) in &runs[1..] {
        assert_eq!(
            events, base_events,
            "semantic event multiset differs between jobs=1 and jobs={jobs}"
        );
        assert_eq!(
            repaired, base_repaired,
            "repaired outputs differ between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn worker_attribution_appears_at_higher_job_counts() {
    let mut env = stdlib::std_env();
    let report = case_studies::swap_list_module_traced(&mut env, 4).unwrap();
    let workers: std::collections::BTreeSet<u32> = report
        .trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LiftConstant { .. }))
        .map(|e| e.worker)
        .collect();
    // The widest wave of the swap module has several independent
    // constants, so at jobs=4 at least two workers lift something.
    assert!(
        workers.len() >= 2,
        "expected multiple workers to be attributed, got {workers:?}"
    );
}

#[test]
fn metrics_registry_matches_event_stream() {
    let mut env = stdlib::std_env();
    let report = case_studies::swap_list_module_traced(&mut env, 1).unwrap();
    let m = report.metrics();
    let count = |pred: &dyn Fn(&EventKind) -> bool| {
        report.trace.iter().filter(|e| pred(&e.kind)).count() as u64
    };
    assert_eq!(m.counter("events.total"), report.trace.len() as u64);
    assert_eq!(
        m.counter("lift.constants"),
        count(&|k| matches!(k, EventKind::LiftConstant { .. }))
    );
    assert_eq!(
        m.counter("events.whnf"),
        count(&|k| matches!(k, EventKind::Whnf))
    );
    assert_eq!(
        m.counter("schedule.waves"),
        count(&|k| matches!(k, EventKind::Wave { .. }))
    );
    assert_eq!(
        m.histogram("lift.constant.ns").unwrap().count(),
        m.counter("lift.constants")
    );
}
