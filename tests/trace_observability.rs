//! Observability contract tests: the JSON-lines wire schema (golden file),
//! trace determinism across worker counts, and event round-tripping.
//!
//! Golden-file policy: timestamps (`t_ns`, `dur_ns`) and worker ids are
//! zeroed before comparison, so the golden file pins the *event structure*
//! (kinds, payloads, order) without pinning wall-clock noise. Regenerate
//! with `PUMPKIN_UPDATE_GOLDEN=1 cargo test -p pumpkin-pi --test
//! trace_observability` after an intentional schema or pipeline change.

use std::collections::BTreeMap;
use std::path::PathBuf;

use pumpkin_pi::case_studies;
use pumpkin_pi::pumpkin_core::trace::{Event, EventKind};
use pumpkin_pi::pumpkin_core::{self, NameMap, Repairer};
use pumpkin_pi::pumpkin_stdlib as stdlib;

fn normalize(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .map(|e| Event {
            t_ns: 0,
            dur_ns: 0,
            worker: 0,
            kind: e.kind.clone(),
        })
        .collect()
}

fn normalized_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in normalize(events) {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// A multiset of the scheduler- and lift-layer events: everything above
/// the kernel caches. Kernel whnf/conv/cache-probe counts legitimately
/// vary with the worker count (each worker forks its own memo tables, so
/// partitioning changes hit/miss patterns and the recursion they prune);
/// the semantic layer must not.
fn semantic_multiset(events: &[Event]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for e in events {
        let key = match &e.kind {
            EventKind::WaveStart { wave, width } => format!("wave_start {wave} {width}"),
            EventKind::Wave { wave, width } => format!("wave {wave} {width}"),
            EventKind::WaveMerge { wave } => format!("wave_merge {wave}"),
            EventKind::LiftConstant { name } => format!("lift {name}"),
            EventKind::Rollback { dropped } => format!("rollback {dropped}"),
            // Run carries the jobs count, which differs by construction;
            // kernel events vary with cache partitioning (see above).
            _ => continue,
        };
        *m.entry(key).or_insert(0) += 1;
    }
    m
}

fn traced_rev_repair() -> Vec<Event> {
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let report = Repairer::new(&lifting)
        .trace(true)
        .run(&mut env, &["Old.rev"])
        .unwrap();
    report.trace
}

#[test]
fn golden_jsonl_schema_is_stable() {
    let got = normalized_jsonl(&traced_rev_repair());
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_swap_rev.jsonl");
    if std::env::var_os("PUMPKIN_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with PUMPKIN_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if got != want {
        let diff_at = got
            .lines()
            .zip(want.lines())
            .position(|(g, w)| g != w)
            .unwrap_or_else(|| got.lines().count().min(want.lines().count()));
        panic!(
            "trace schema drifted from {} at line {} \
             (got {} lines, want {}); first differing line:\n  got:  {}\n  want: {}\n\
             regenerate with PUMPKIN_UPDATE_GOLDEN=1 if the change is intentional",
            path.display(),
            diff_at + 1,
            got.lines().count(),
            want.lines().count(),
            got.lines().nth(diff_at).unwrap_or("<eof>"),
            want.lines().nth(diff_at).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn golden_auto_jsonl_schema_is_stable() {
    // The automatic search's candidate/verdict stream. Cache probing is
    // off so every candidate runs regardless of what other tests put in
    // the process-wide failure cache, and deterministic mode zeroes the
    // per-candidate costs — the stream is byte-stable by construction.
    let src = "Definition New.golden_auto : nat := O.\n\
               Definition Old.golden_auto : forall (T : Type 1), Old.list T -> Old.list T := \
               fun (T : Type 1) (l : Old.list T) => l.";
    let mut env = stdlib::std_env();
    let (auto, result) = Repairer::auto(pumpkin_core::AutoPolicy {
        use_failure_cache: false,
        minimize: false,
        deterministic: true,
        ..Default::default()
    })
    .source(src)
    .run(&mut env, &["Old.rev"]);
    assert!(result.is_err(), "collision module must exhaust");
    let got = normalized_jsonl(&auto.to_events());
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_auto.jsonl");
    if std::env::var_os("PUMPKIN_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with PUMPKIN_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "auto trace schema drifted from {}; regenerate with PUMPKIN_UPDATE_GOLDEN=1 if intentional",
        path.display()
    );
}

#[test]
fn events_round_trip_through_json() {
    let events = traced_rev_repair();
    assert!(!events.is_empty());
    for e in &events {
        let line = e.to_json();
        assert_eq!(
            Event::from_json(&line).as_ref(),
            Some(e),
            "round-trip failed for: {line}"
        );
    }
}

#[test]
fn single_worker_trace_is_reproducible() {
    // jobs=1 runs everything on the master thread with one cache, so the
    // full event stream — kernel probes included — must be identical
    // modulo timestamps from run to run.
    let mut env_a = stdlib::std_env();
    let mut env_b = stdlib::std_env();
    let a = case_studies::swap_list_module_traced(&mut env_a, 1).unwrap();
    let b = case_studies::swap_list_module_traced(&mut env_b, 1).unwrap();
    assert_eq!(normalize(&a.trace), normalize(&b.trace));
    assert_eq!(a.repaired, b.repaired);
}

#[test]
fn semantic_events_agree_across_worker_counts() {
    let mut runs = Vec::new();
    for jobs in [1usize, 2, 4] {
        let mut env = stdlib::std_env();
        let report = case_studies::swap_list_module_traced(&mut env, jobs).unwrap();
        assert!(
            report
                .trace
                .iter()
                .any(|e| matches!(e.kind, EventKind::Run { jobs: j } if j == jobs as u32)),
            "jobs={jobs} run span missing"
        );
        let mut repaired = report.repaired.clone();
        repaired.sort();
        runs.push((jobs, semantic_multiset(&report.trace), repaired));
    }
    let (_, base_events, base_repaired) = &runs[0];
    for (jobs, events, repaired) in &runs[1..] {
        assert_eq!(
            events, base_events,
            "semantic event multiset differs between jobs=1 and jobs={jobs}"
        );
        assert_eq!(
            repaired, base_repaired,
            "repaired outputs differ between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn worker_attribution_appears_at_higher_job_counts() {
    let mut env = stdlib::std_env();
    let report = case_studies::swap_list_module_traced(&mut env, 4).unwrap();
    let workers: std::collections::BTreeSet<u32> = report
        .trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LiftConstant { .. }))
        .map(|e| e.worker)
        .collect();
    // The widest wave of the swap module has several independent
    // constants, so at jobs=4 at least two workers lift something.
    assert!(
        workers.len() >= 2,
        "expected multiple workers to be attributed, got {workers:?}"
    );
}

#[test]
fn metrics_registry_matches_event_stream() {
    let mut env = stdlib::std_env();
    let report = case_studies::swap_list_module_traced(&mut env, 1).unwrap();
    let m = report.metrics();
    let count = |pred: &dyn Fn(&EventKind) -> bool| {
        report.trace.iter().filter(|e| pred(&e.kind)).count() as u64
    };
    assert_eq!(m.counter("events.total"), report.trace.len() as u64);
    assert_eq!(
        m.counter("lift.constants"),
        count(&|k| matches!(k, EventKind::LiftConstant { .. }))
    );
    assert_eq!(
        m.counter("events.whnf"),
        count(&|k| matches!(k, EventKind::Whnf))
    );
    assert_eq!(
        m.counter("schedule.waves"),
        count(&|k| matches!(k, EventKind::Wave { .. }))
    );
    assert_eq!(
        m.histogram("lift.constant.ns").unwrap().count(),
        m.counter("lift.constants")
    );
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check_golden(got: &str, path: &PathBuf) {
    if std::env::var_os("PUMPKIN_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with PUMPKIN_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "output drifted from {}; regenerate with PUMPKIN_UPDATE_GOLDEN=1 if intentional",
        path.display()
    );
}

#[test]
fn trace_report_critical_path_golden() {
    // A hand-crafted fixture with fixed timestamps, so the rendered report
    // is identical in debug and release builds.
    use pumpkin_pi::pumpkin_core::trace::report;
    let fixture = std::fs::read_to_string(golden_dir().join("trace_report_fixture.jsonl"))
        .expect("read fixture");
    assert!(report::lint(&fixture).is_empty(), "fixture must lint clean");
    let parsed = report::parse_lines(&fixture);
    assert!(parsed.errors.is_empty());
    let got = report::render(&parsed.events, 3);
    assert!(got.contains("critical path (2 waves):"), "{got}");
    check_golden(&got, &golden_dir().join("trace_report_fixture.txt"));
}

#[test]
fn prov_events_appear_in_stream_and_reassemble() {
    use pumpkin_pi::pumpkin_core::trace::prov::ConstProvenance;
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let report = Repairer::new(&lifting)
        .trace(true)
        .run(&mut env, &["Old.rev"])
        .unwrap();
    // Tracing defaults provenance on: the stream carries the prov family
    // and it reassembles to exactly the report's provenance trees.
    assert!(!report.provenance.is_empty());
    let from_stream = ConstProvenance::from_events(&report.trace);
    assert_eq!(from_stream, report.provenance);
    let rev = report
        .provenance_for("Old.rev")
        .expect("Old.rev provenance");
    assert_eq!(rev.to, "New.rev");
    assert!(!rev.sites.is_empty());
}

#[test]
fn provenance_is_zero_cost_when_off() {
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    // Explicitly disabled even though tracing is on: no prov events in the
    // stream, no provenance on the report, result unchanged.
    let report = Repairer::new(&lifting)
        .trace(true)
        .provenance(false)
        .run(&mut env, &["Old.rev"])
        .unwrap();
    assert!(report.provenance.is_empty());
    assert!(!report.trace.iter().any(|e| matches!(
        e.kind,
        EventKind::ProvConst { .. } | EventKind::ProvSite { .. }
    )));
    assert!(env.contains("New.rev"));
}

#[test]
fn canonical_metrics_agree_across_worker_counts() {
    // Satellite: the canonicalization pass folds job-variant cache/timing
    // counters into invariant aggregates, so the canonical form of the
    // same repair is identical at jobs ∈ {1, 2, 4}.
    use pumpkin_pi::pumpkin_core::trace::Metrics;
    let mut canon = Vec::new();
    for jobs in [1usize, 2, 4] {
        let mut env = stdlib::std_env();
        let report = case_studies::swap_list_module_traced(&mut env, jobs).unwrap();
        canon.push((jobs, Metrics::from_events(&report.trace).canonicalize()));
    }
    let (_, base) = &canon[0];
    for (jobs, m) in &canon[1..] {
        assert_eq!(
            m.to_text(),
            base.to_text(),
            "canonical metrics differ between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn explain_attributes_swap_module_rewrites() {
    // Acceptance criterion: `pumpkin explain` on the swap-list case study
    // attributes at least 95% of rewritten subterms to a named rule.
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let report = Repairer::new(&lifting)
        .provenance(true)
        .run(&mut env, stdlib::swap::OLD_MODULE_CONSTANTS)
        .unwrap();
    assert!(!report.provenance.is_empty());
    let (mut total, mut attributed) = (0usize, 0usize);
    for p in &report.provenance {
        let sites: Vec<pumpkin_pi::pumpkin_lang::DiffSite> = p
            .sites
            .iter()
            .map(|s| pumpkin_pi::pumpkin_lang::DiffSite {
                path: &s.path,
                rule: s.rule.as_str(),
            })
            .collect();
        let e = pumpkin_pi::pumpkin_lang::explain_decl(&env, &p.from, &p.to, &sites)
            .unwrap_or_else(|| panic!("{} / {} not in env", p.from, p.to));
        assert!(
            !e.divergences.is_empty(),
            "{} was repaired but shows no diff",
            p.from
        );
        total += e.divergences.len();
        attributed += e.attributed();
    }
    assert!(total > 0);
    let coverage = attributed as f64 / total as f64;
    assert!(
        coverage >= 0.95,
        "explain attributed only {attributed}/{total} divergences ({:.1}%)",
        100.0 * coverage
    );
}

#[test]
fn source_not_free_error_rendering_golden() {
    // Pins the exact rendered form of the SourceNotFree diagnostic — both
    // the direct-mention shape and the through-a-dependency shape with its
    // residual subterm.
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    pumpkin_pi::pumpkin_lang::load_source(
        &mut env,
        "Definition inner : nat := Old.length nat (Old.nil nat).
         Definition outer : nat := inner.",
    )
    .unwrap();
    let direct = pumpkin_core::repair::check_source_free(&env, &lifting, &"Old.rev".into())
        .unwrap_err()
        .to_string();
    let through_dep = pumpkin_core::repair::check_source_free(&env, &lifting, &"outer".into())
        .unwrap_err()
        .to_string();
    let got = format!("{direct}\n{through_dep}\n");
    check_golden(&got, &golden_dir().join("source_not_free.txt"));
}
