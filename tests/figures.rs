//! Regeneration checks for the paper's qualitative artifacts — every figure
//! in the evaluation has an assertion here or in `case_studies.rs` (see
//! EXPERIMENTS.md for the index).

use pumpkin_pi::case_studies;
use pumpkin_pi::pumpkin_core::{self, LiftState, NameMap, Repairer};
use pumpkin_pi::pumpkin_kernel::conv::conv;
use pumpkin_pi::pumpkin_lang;
use pumpkin_pi::pumpkin_stdlib as stdlib;
use pumpkin_pi::pumpkin_tactics::{self, Tactic};

/// Fig. 1 + Fig. 3: the swapped list type and its auto-discovered
/// equivalence, with the statements of section/retraction exactly as in the
/// paper.
#[test]
fn fig3_equivalence_statements() {
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let eqv = lifting.equivalence.unwrap();
    let section_ty = env.const_decl(&eqv.section).unwrap().ty.clone();
    let expected = pumpkin_lang::term(
        &env,
        "forall (T : Type 1) (l : Old.list T),
           eq (Old.list T)
              (New.list_to_Old.list T (Old.list_to_New.list T l)) l",
    )
    .unwrap();
    assert!(conv(&env, &section_ty, &expected));
    let retraction_ty = env.const_decl(&eqv.retraction).unwrap().ty.clone();
    let expected = pumpkin_lang::term(
        &env,
        "forall (T : Type 1) (l : New.list T),
           eq (New.list T)
              (Old.list_to_New.list T (New.list_to_Old.list T l)) l",
    )
    .unwrap();
    assert!(conv(&env, &retraction_ty, &expected));
}

/// Fig. 8 + Fig. 11: the configuration swaps constructors and cases; the
/// lifted append function is exactly the paper's stage-4 output (cases
/// swapped, constructors renumbered).
#[test]
fn fig11_lifting_append_final_stage() {
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st = LiftState::new();
    Repairer::new(&lifting)
        .state(&mut st)
        .run_one(&mut env, &"Old.app".into())
        .unwrap();
    let got = env
        .const_decl(&"New.app".into())
        .unwrap()
        .body
        .clone()
        .unwrap();
    // Stage 4 (paper Fig. 11, bottom-right): Elim over New.list with the
    // cons case first and Constr(0, New.list T) in the recursive position.
    let expected = pumpkin_lang::term(
        &env,
        "fun (T : Type 1) (l m : New.list T) =>
           elim l : New.list T return (fun (x : New.list T) => New.list T) with
           | fun (t : T) (l' : New.list T) (ih : New.list T) => New.cons T t ih
           | m
           end",
    )
    .unwrap();
    assert_eq!(got, expected);
}

/// Fig. 2 / Fig. 15: the repaired `rev_app_distr` decompiles to a script
/// whose first case is the cons case (the constructors swapped), which
/// re-proves the repaired statement.
#[test]
fn fig2_repaired_script_structure() {
    let mut env = stdlib::std_env();
    case_studies::swap_list_module(&mut env).unwrap();
    let (goal, raw) = pumpkin_tactics::decompile_constant(&env, "New.rev_app_distr").unwrap();
    let script = pumpkin_tactics::second_pass(&raw);
    pumpkin_tactics::prove(&env, &goal, &script).unwrap();

    // Structure: intros, then induction whose FIRST case is the cons case
    // (three intro-pattern names + y), and whose second is the nil case.
    let Tactic::Induction { cases, .. } = &script.0[1] else {
        panic!("expected induction, got {:?}", script.0[1]);
    };
    assert_eq!(cases.len(), 2);
    let rendered = pumpkin_tactics::render(&env, &[], &script);
    assert!(rendered.contains("New.app_assoc"), "{rendered}");
    assert!(rendered.contains("New.app_nil_r"), "{rendered}");
    assert!(rendered.contains("symmetry"), "{rendered}");
}

/// Fig. 13/14: the rewrite rules of the mini decompiler — an `eq_ind_r`
/// proof becomes `intro…; rewrite; reflexivity` and re-elaborates.
#[test]
fn fig14_rewrite_decompilation() {
    let mut env = stdlib::std_env();
    pumpkin_lang::load_source(
        &mut env,
        "Definition rew_demo : forall (n m : nat), eq nat n m -> eq nat (S n) (S m) :=
           fun (n m : nat) (H : eq nat n m) =>
             eq_ind_r nat m (fun (z : nat) => eq nat (S z) (S m))
               (eq_refl nat (S m)) n H.",
    )
    .unwrap();
    let (goal, raw) = pumpkin_tactics::decompile_constant(&env, "rew_demo").unwrap();
    let script = pumpkin_tactics::second_pass(&raw);
    let kinds: Vec<&str> = script
        .0
        .iter()
        .map(|t| match t {
            Tactic::Intros(_) | Tactic::Intro(_) => "intros",
            Tactic::Simpl => "simpl",
            Tactic::Rewrite { .. } => "rewrite",
            Tactic::Reflexivity => "reflexivity",
            _ => "?",
        })
        .collect();
    assert_eq!(kinds, vec!["intros", "simpl", "rewrite", "reflexivity"]);
    pumpkin_tactics::prove(&env, &goal, &script).unwrap();
}

/// Fig. 17: the ported `cork` uses all nine record projections, and the
/// ported `corkLemma` speaks about `corked`.
#[test]
fn fig17_record_cork_shape() {
    let mut env = stdlib::std_env();
    case_studies::galois_round_trip(&mut env).unwrap();
    let body = env
        .const_decl(&"Record.cork".into())
        .unwrap()
        .body
        .clone()
        .unwrap();
    for proj in pumpkin_core::search::tuple_record::connection_projs() {
        assert!(
            body.mentions_global(&proj),
            "Record.cork does not mention {proj}"
        );
    }
    let lemma_ty = env
        .const_decl(&"Record.corkLemma".into())
        .unwrap()
        .ty
        .clone();
    assert!(lemma_ty.mentions_global(&"corked".into()));
    assert!(!lemma_ty.mentions_global(&"fst".into()));
}

/// Fig. 9 / §6.3: the repaired slow addition is literally Peano recursion
/// over `N`, with no reference to `nat`.
#[test]
fn fig9_slow_add_shape() {
    let mut env = stdlib::std_env();
    case_studies::binary_nat(&mut env).unwrap();
    let got = env
        .const_decl(&"slow_add".into())
        .unwrap()
        .body
        .clone()
        .unwrap();
    let expected = pumpkin_lang::term(
        &env,
        "fun (n m : N) =>
           N.peano_rect (fun (x : N) => N) m
             (fun (p : N) (ih : N) => N.succ ih) n",
    )
    .unwrap();
    assert_eq!(got, expected);
}

/// §6.2: the repaired zip lemma's statement is the paper's, over
/// `Σ(n). vector T n`.
#[test]
fn fig5_sig_zip_lemma_statement() {
    let mut env = stdlib::std_env();
    case_studies::ornament_zip(&mut env).unwrap();
    let got = env
        .const_decl(&"Sig.zip_with_is_zip".into())
        .unwrap()
        .ty
        .clone();
    let expected = pumpkin_lang::term(
        &env,
        "forall (A : Type 1) (B : Type 1) (l1 : sig_vector A) (l2 : sig_vector B),
           eq (sig_vector (prod A B))
              (Sig.zip_with A B (prod A B) (pair A B) l1 l2)
              (Sig.zip A B l1 l2)",
    )
    .unwrap();
    assert!(conv(&env, &got, &expected));
}
