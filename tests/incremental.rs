//! Seed-replayable properties of incremental differential repair
//! (DESIGN.md §16). The central claim: repairing after touching a random
//! subset of a dependency chain, replaying the rest from the persist
//! cache, is **byte-identical** to repairing the edited module from
//! scratch — and the `{changed, replayed, skipped}` accounting matches
//! the DAG closure of the touch exactly. Replay a failure with
//! `PUMPKIN_TEST_SEED`.

use std::path::PathBuf;

use pumpkin_pi::pumpkin_core::{DigestMap, LiftState, NameMap, RepairReport, Repairer};
use pumpkin_pi::pumpkin_kernel::env::Env;
use pumpkin_pi::pumpkin_lang;
use pumpkin_pi::pumpkin_stdlib as stdlib;
use pumpkin_testkit::check;

/// Length of the generated `Old.mine*` dependency chain.
const CHAIN: usize = 6;

/// Sources a chain `Old.mine0 … Old.mineN`: each body is `S^{k_i}` of the
/// previous link (`O` for the first). Editing `k_i` changes link `i`'s
/// digest only — every later link keeps its digest but depends on the
/// edit through the module DAG, which is exactly the case invalidation
/// must catch (replaying a stale persisted entry would skip the
/// re-check).
fn chain_source(ks: &[u64]) -> String {
    let mut src = String::new();
    for (i, k) in ks.iter().enumerate() {
        let mut body = if i == 0 {
            "O".to_string()
        } else {
            format!("Old.mine{}", i - 1)
        };
        for _ in 0..*k {
            body = format!("(S {body})");
        }
        src.push_str(&format!("Definition Old.mine{i} : nat := {body}.\n"));
    }
    src
}

/// The standard world plus the chain, and the full work list (swap module
/// constants followed by the chain links).
fn world(ks: &[u64]) -> (Env, Vec<String>) {
    let mut env = stdlib::std_env();
    pumpkin_lang::load_source(&mut env, &chain_source(ks)).expect("load chain source");
    let mut names: Vec<String> = stdlib::swap::OLD_MODULE_CONSTANTS
        .iter()
        .map(|s| s.to_string())
        .collect();
    names.extend((0..ks.len()).map(|i| format!("Old.mine{i}")));
    (env, names)
}

fn repair(
    env: &mut Env,
    names: &[String],
    cache: Option<&PathBuf>,
    prev: Option<&DigestMap>,
) -> RepairReport {
    let lifting = pumpkin_pi::pumpkin_core::search::swap::configure(
        env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .expect("configure swap");
    let mut st = LiftState::new();
    let mut r = Repairer::new(&lifting).state(&mut st);
    if let Some(dir) = cache {
        r = r.persist_cache(dir);
    }
    if let Some(p) = prev {
        r = r.incremental(p);
    }
    let borrowed: Vec<&str> = names.iter().map(String::as_str).collect();
    r.run(env, &borrowed).expect("repair")
}

#[test]
fn incremental_replay_of_random_touches_matches_from_scratch() {
    let root = std::env::temp_dir().join(format!("pumpkin-incr-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    check(4, |rng| {
        let cache = root.join(format!("case-{:x}", rng.u64()));
        // v1: random S-counts per link; v2: bump a random subset of them.
        let ks1: Vec<u64> = (0..CHAIN).map(|_| rng.below(3)).collect();
        let touched: Vec<usize> = (0..CHAIN).filter(|_| rng.chance(1, 3)).collect();
        let mut ks2 = ks1.clone();
        for &i in &touched {
            ks2[i] += 1;
        }

        // Cold run on v1 populates the persist cache; snapshot its world.
        let (mut env1, names) = world(&ks1);
        let _ = repair(&mut env1, &names, Some(&cache), None);
        let borrowed: Vec<&str> = names.iter().map(String::as_str).collect();
        let snap = DigestMap::capture(&env1, &borrowed);

        // Reference: the edited module repaired from scratch, no cache.
        let (mut env_ref, _) = world(&ks2);
        let report_ref = repair(&mut env_ref, &names, None, None);
        assert!(
            report_ref.incr.is_none(),
            "cold runs must not report incr stats"
        );

        // Candidate: the same edit repaired incrementally against the
        // snapshot, replaying unchanged constants from the cache.
        let (mut env_inc, _) = world(&ks2);
        let report_inc = repair(&mut env_inc, &names, Some(&cache), Some(&snap));

        // Byte-identity: same name map, same repaired declarations.
        assert_eq!(
            report_ref.repaired, report_inc.repaired,
            "repaired name maps differ (touched {touched:?})"
        );
        for (_, to) in &report_inc.repaired {
            let r = env_ref.const_decl(to).unwrap();
            let i = env_inc.const_decl(to).unwrap();
            assert_eq!(
                pumpkin_lang::pretty(&env_ref, &r.ty),
                pumpkin_lang::pretty(&env_inc, &i.ty),
                "type of {to} diverged under replay"
            );
            match (&r.body, &i.body) {
                (Some(a), Some(b)) => assert_eq!(
                    pumpkin_lang::pretty(&env_ref, a),
                    pumpkin_lang::pretty(&env_inc, b),
                    "body of {to} diverged under replay"
                ),
                (None, None) => {}
                _ => panic!("definedness of {to} differs under replay"),
            }
        }

        // Accounting: `changed` is exactly the touched links, and the
        // fresh-lift set is the chain suffix from the first touch (its
        // downstream closure); everything else is a cache replay.
        let incr = report_inc.incr.expect("incremental run reports stats");
        assert_eq!(incr.changed, touched.len() as u64, "changed != touched set");
        let expect_fresh = touched.first().map_or(0, |&lo| CHAIN - lo);
        assert_eq!(
            incr.replayed, expect_fresh as u64,
            "fresh lifts != downstream closure of the touch {touched:?}"
        );
        assert_eq!(
            incr.replayed + incr.skipped,
            names.len() as u64,
            "incr accounting does not cover the work list"
        );

        let _ = std::fs::remove_dir_all(&cache);
    });
    let _ = std::fs::remove_dir_all(&root);
}
