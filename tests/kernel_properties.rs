//! Property-based tests of the kernel substrate: substitution laws,
//! normalization idempotence, conversion congruence, and parser ↔
//! pretty-printer round trips on randomly generated terms.

use proptest::prelude::*;
use pumpkin_pi::pumpkin_kernel::conv::conv;
use pumpkin_pi::pumpkin_kernel::reduce::normalize;
use pumpkin_pi::pumpkin_kernel::subst::{lift, lift_from, subst1};
use pumpkin_pi::pumpkin_kernel::term::Term;
use pumpkin_pi::pumpkin_kernel::typecheck::infer_closed;
use pumpkin_pi::pumpkin_lang;
use pumpkin_pi::pumpkin_stdlib as stdlib;
use stdlib::nat::{nat_lit, nat_value};

/// Random *well-scoped* (possibly open) lambda terms over `nat`.
fn arb_scoped(depth: u32) -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (0usize..4).prop_map(Term::rel),
        Just(Term::ind("nat")),
        Just(Term::construct("nat", 0)),
        Just(Term::const_("add")),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(f, a)| Term::app1(f, a)),
            inner
                .clone()
                .prop_map(|b| Term::lambda("x", Term::ind("nat"), b)),
            inner.clone().prop_map(|b| Term::pi("x", Term::ind("nat"), b)),
        ]
    })
}

/// A model of nat arithmetic expressions, evaluable in Rust and buildable
/// as well-typed kernel terms.
#[derive(Clone, Debug)]
enum Arith {
    Lit(u64),
    Add(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
}

fn arb_arith() -> impl Strategy<Value = Arith> {
    let leaf = (0u64..8).prop_map(Arith::Lit);
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Arith::Sub(Box::new(a), Box::new(b))),
        ]
    })
}

impl Arith {
    fn eval(&self) -> u64 {
        match self {
            Arith::Lit(n) => *n,
            Arith::Add(a, b) => a.eval() + b.eval(),
            Arith::Mul(a, b) => a.eval() * b.eval(),
            Arith::Sub(a, b) => a.eval().saturating_sub(b.eval()),
        }
    }

    fn term(&self) -> Term {
        match self {
            Arith::Lit(n) => nat_lit(*n),
            Arith::Add(a, b) => Term::app(Term::const_("add"), [a.term(), b.term()]),
            Arith::Mul(a, b) => Term::app(Term::const_("mul"), [a.term(), b.term()]),
            Arith::Sub(a, b) => Term::app(Term::const_("sub"), [a.term(), b.term()]),
        }
    }
}

#[test]
fn lift_composition_and_identity() {
    proptest!(|(t in arb_scoped(3), a in 0usize..3, b in 0usize..3)| {
        prop_assert_eq!(lift(&t, 0), t.clone());
        prop_assert_eq!(lift(&lift(&t, a), b), lift(&t, a + b));
    });
}

#[test]
fn subst_after_lift_is_identity() {
    proptest!(|(t in arb_scoped(3), v in arb_scoped(2))| {
        // Substituting into a lifted term hits nothing.
        prop_assert_eq!(subst1(&lift_from(&t, 0, 1), &v), t);
    });
}

#[test]
fn lift_commutes_with_subst_at_depth() {
    proptest!(|(t in arb_scoped(3), v in arb_scoped(2), k in 1usize..3)| {
        // lift_from above the substitution point commutes.
        let lhs = lift_from(&subst1(&t, &v), 0, k);
        let rhs = subst1(&lift_from(&t, 1, k), &lift_from(&v, 0, k));
        prop_assert_eq!(lhs, rhs);
    });
}

#[test]
fn arithmetic_agrees_with_model_and_normalize_is_idempotent() {
    let env = stdlib::std_env();
    proptest!(ProptestConfig::with_cases(64), |(e in arb_arith())| {
        let t = e.term();
        let n1 = normalize(&env, &t);
        prop_assert_eq!(nat_value(&n1), Some(e.eval()));
        let n2 = normalize(&env, &n1);
        prop_assert_eq!(&n1, &n2);
        // Conversion: a term is convertible with its normal form.
        prop_assert!(conv(&env, &t, &n1));
        // And typing is preserved by normalization.
        let ty1 = infer_closed(&env, &t).unwrap();
        let ty2 = infer_closed(&env, &n1).unwrap();
        prop_assert!(conv(&env, &ty1, &ty2));
    });
}

#[test]
fn conversion_is_congruent_for_arithmetic() {
    let env = stdlib::std_env();
    proptest!(ProptestConfig::with_cases(64), |(a in arb_arith(), b in arb_arith())| {
        let (ta, tb) = (a.term(), b.term());
        let equal = a.eval() == b.eval();
        prop_assert_eq!(conv(&env, &ta, &tb), equal);
    });
}

#[test]
fn pretty_parse_round_trip_on_random_closed_terms() {
    let env = stdlib::std_env();
    // Closed terms: wrap open terms in enough lambdas.
    proptest!(ProptestConfig::with_cases(128), |(t0 in arb_scoped(3))| {
        let mut t = t0;
        for _ in 0..4 {
            t = Term::lambda("v", Term::ind("nat"), t);
        }
        prop_assume!(t.is_closed());
        let printed = pumpkin_lang::pretty(&env, &t);
        let reparsed = pumpkin_lang::term(&env, &printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(reparsed, t);
    });
}

#[test]
fn record_eta_conversion_holds_for_pairs_and_sigma() {
    let env = stdlib::std_env();
    // ∀ p : prod nat bool, (fst p, snd p) ≡ p — definitional surjective
    // pairing (our documented deviation; see DESIGN.md).
    let lhs = pumpkin_lang::term(
        &env,
        "fun (p : prod nat bool) =>
           pair nat bool (fst nat bool p) (snd nat bool p)",
    )
    .unwrap();
    let rhs = pumpkin_lang::term(&env, "fun (p : prod nat bool) => p").unwrap();
    assert!(conv(&env, &lhs, &rhs));
    // But distinct pairs are still distinguished.
    let a = pumpkin_lang::term(&env, "pair nat bool O true").unwrap();
    let b = pumpkin_lang::term(&env, "pair nat bool O false").unwrap();
    assert!(!conv(&env, &a, &b));
}
