//! Property-based tests of the kernel substrate: substitution laws,
//! normalization idempotence, conversion congruence, parser ↔
//! pretty-printer round trips, and coherence of the kernel's conv/whnf
//! memo layer — all on randomly generated terms from the deterministic
//! [`pumpkin_testkit`] generator.

use pumpkin_pi::pumpkin_kernel::conv::conv;
use pumpkin_pi::pumpkin_kernel::reduce::{normalize, whnf};
use pumpkin_pi::pumpkin_kernel::subst::{lift, lift_from, subst1, subst_at, subst_many};
use pumpkin_pi::pumpkin_kernel::term::Term;
use pumpkin_pi::pumpkin_kernel::typecheck::infer_closed;
use pumpkin_pi::pumpkin_lang;
use pumpkin_pi::pumpkin_stdlib as stdlib;
use pumpkin_testkit::{check, Rng};
use stdlib::nat::{nat_lit, nat_value};

/// Random *well-scoped* (possibly open) lambda terms over `nat`, with free
/// variables drawn from `0..4`.
fn arb_scoped(rng: &mut Rng, depth: u32) -> Term {
    if depth == 0 || rng.chance(2, 5) {
        match rng.index(4) {
            0 => Term::rel(rng.index(4)),
            1 => Term::ind("nat"),
            2 => Term::construct("nat", 0),
            _ => Term::const_("add"),
        }
    } else {
        match rng.index(3) {
            0 => Term::app1(arb_scoped(rng, depth - 1), arb_scoped(rng, depth - 1)),
            1 => Term::lambda("x", Term::ind("nat"), arb_scoped(rng, depth - 1)),
            _ => Term::pi("x", Term::ind("nat"), arb_scoped(rng, depth - 1)),
        }
    }
}

/// A model of nat arithmetic expressions, evaluable in Rust and buildable
/// as well-typed kernel terms.
#[derive(Clone, Debug)]
enum Arith {
    Lit(u64),
    Add(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
}

fn arb_arith(rng: &mut Rng, depth: u32) -> Arith {
    if depth == 0 || rng.chance(1, 3) {
        Arith::Lit(rng.below(8))
    } else {
        let a = Box::new(arb_arith(rng, depth - 1));
        let b = Box::new(arb_arith(rng, depth - 1));
        match rng.index(3) {
            0 => Arith::Add(a, b),
            1 => Arith::Mul(a, b),
            _ => Arith::Sub(a, b),
        }
    }
}

impl Arith {
    fn eval(&self) -> u64 {
        match self {
            Arith::Lit(n) => *n,
            Arith::Add(a, b) => a.eval() + b.eval(),
            Arith::Mul(a, b) => a.eval() * b.eval(),
            Arith::Sub(a, b) => a.eval().saturating_sub(b.eval()),
        }
    }

    fn term(&self) -> Term {
        match self {
            Arith::Lit(n) => nat_lit(*n),
            Arith::Add(a, b) => Term::app(Term::const_("add"), [a.term(), b.term()]),
            Arith::Mul(a, b) => Term::app(Term::const_("mul"), [a.term(), b.term()]),
            Arith::Sub(a, b) => Term::app(Term::const_("sub"), [a.term(), b.term()]),
        }
    }
}

#[test]
fn lift_composition_and_identity() {
    check(256, |rng| {
        let t = arb_scoped(rng, 3);
        let a = rng.index(3);
        let b = rng.index(3);
        assert_eq!(lift(&t, 0), t.clone());
        assert_eq!(lift(&lift(&t, a), b), lift(&t, a + b));
    });
}

#[test]
fn subst_after_lift_is_identity() {
    check(256, |rng| {
        let t = arb_scoped(rng, 3);
        let v = arb_scoped(rng, 2);
        // Substituting into a lifted term hits nothing.
        assert_eq!(subst1(&lift_from(&t, 0, 1), &v), t);
    });
}

#[test]
fn lift_commutes_with_subst_at_depth() {
    check(256, |rng| {
        let t = arb_scoped(rng, 3);
        let v = arb_scoped(rng, 2);
        let k = 1 + rng.index(2);
        // lift_from above the substitution point commutes.
        let lhs = lift_from(&subst1(&t, &v), 0, k);
        let rhs = subst1(&lift_from(&t, 1, k), &lift_from(&v, 0, k));
        assert_eq!(lhs, rhs);
    });
}

#[test]
fn subst_many_open_values() {
    // Regression for the simultaneous-substitution bug: open values must
    // keep their "context outside the whole binder group" interpretation.
    // The executable spec is substitution at descending indices, which
    // never re-traverses an already-substituted value.
    check(512, |rng| {
        let t = arb_scoped(rng, 3);
        let n = 1 + rng.index(3);
        let values: Vec<Term> = (0..n).map(|_| arb_scoped(rng, 2)).collect();
        let simultaneous = subst_many(&t, &values);
        let mut descending = t.clone();
        for (k, v) in values.iter().enumerate().rev() {
            descending = subst_at(&descending, k, v);
        }
        assert_eq!(simultaneous, descending);
    });
}

#[test]
fn subst_many_on_group_members_is_projection() {
    // Rel(i) for i < n maps to exactly values[i], unchanged.
    check(256, |rng| {
        let n = 1 + rng.index(3);
        let values: Vec<Term> = (0..n).map(|_| arb_scoped(rng, 2)).collect();
        let i = rng.index(n);
        assert_eq!(subst_many(&Term::rel(i), &values), values[i]);
        // And an ambient variable just shifts down by the group size.
        let j = n + rng.index(3);
        assert_eq!(subst_many(&Term::rel(j), &values), Term::rel(j - n));
    });
}

#[test]
fn arithmetic_agrees_with_model_and_normalize_is_idempotent() {
    let env = stdlib::std_env();
    check(64, |rng| {
        let e = arb_arith(rng, 3);
        let t = e.term();
        let n1 = normalize(&env, &t);
        assert_eq!(nat_value(&n1), Some(e.eval()));
        let n2 = normalize(&env, &n1);
        assert_eq!(&n1, &n2);
        // Conversion: a term is convertible with its normal form.
        assert!(conv(&env, &t, &n1));
        // And typing is preserved by normalization.
        let ty1 = infer_closed(&env, &t).unwrap();
        let ty2 = infer_closed(&env, &n1).unwrap();
        assert!(conv(&env, &ty1, &ty2));
    });
}

#[test]
fn conversion_is_congruent_for_arithmetic() {
    let env = stdlib::std_env();
    check(64, |rng| {
        let a = arb_arith(rng, 3);
        let b = arb_arith(rng, 3);
        let (ta, tb) = (a.term(), b.term());
        let equal = a.eval() == b.eval();
        assert_eq!(conv(&env, &ta, &tb), equal);
    });
}

#[test]
fn cached_conv_and_whnf_agree_with_uncached() {
    // The kernel memo layer must be semantically invisible: every verdict
    // and every weak head normal form computed with the cache on equals
    // the one computed with the cache off, on the same queries in the
    // same order (so the cached run actually exercises hits).
    let cached_env = stdlib::std_env();
    let mut uncached_env = stdlib::std_env();
    uncached_env.set_kernel_cache(false);
    check(48, |rng| {
        let a = arb_arith(rng, 3);
        let b = arb_arith(rng, 3);
        let (ta, tb) = (a.term(), b.term());
        assert_eq!(
            conv(&cached_env, &ta, &tb),
            conv(&uncached_env, &ta, &tb),
            "conv verdict diverged on {ta} vs {tb}"
        );
        // Repeat the same query so the cached run takes the memo path.
        assert_eq!(conv(&cached_env, &ta, &tb), conv(&uncached_env, &ta, &tb));
        assert_eq!(
            whnf(&cached_env, &ta),
            whnf(&uncached_env, &ta),
            "whnf diverged on {ta}"
        );
        assert_eq!(whnf(&cached_env, &ta), whnf(&uncached_env, &ta));
    });
    // The cached run must actually have used the cache.
    let stats = cached_env.kernel_stats();
    assert!(
        stats.conv_cache_hits > 0 || stats.whnf_cache_hits > 0,
        "differential test never hit the cache: {stats}"
    );
}

#[test]
fn transparency_flips_invalidate_cached_delta_results() {
    // For random arithmetic, flipping `add`/`mul`/`sub` opaque must
    // change reduction behaviour immediately (no stale cache), and
    // flipping back must restore it.
    let mut env = stdlib::std_env();
    let names = ["add", "mul", "sub"];
    check(24, |rng| {
        let e = arb_arith(rng, 2);
        let t = e.term();
        let transparent_nf = normalize(&env, &t);
        assert_eq!(nat_value(&transparent_nf), Some(e.eval()));

        let name = *rng.pick(&names);
        env.set_opaque(&name.into(), true).unwrap();
        let opaque_nf = normalize(&env, &t);
        if t.mentions_global(&name.into()) {
            // The blocked constant is stuck, so the normal form differs
            // whenever the expression actually uses it.
            assert!(
                opaque_nf.mentions_global(&name.into()),
                "δ-blocked `{name}` vanished from normal form of {t}"
            );
        } else {
            assert_eq!(opaque_nf, transparent_nf);
        }
        env.set_opaque(&name.into(), false).unwrap();
        // Back to transparent: cached opaque results must not leak.
        assert_eq!(normalize(&env, &t), transparent_nf);
    });
}

#[test]
fn pretty_parse_round_trip_on_random_closed_terms() {
    let env = stdlib::std_env();
    // Closed terms: wrap open terms in enough lambdas.
    check(128, |rng| {
        let mut t = arb_scoped(rng, 3);
        for _ in 0..4 {
            t = Term::lambda("v", Term::ind("nat"), t);
        }
        assert!(t.is_closed());
        let printed = pumpkin_lang::pretty(&env, &t);
        let reparsed = pumpkin_lang::term(&env, &printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert_eq!(reparsed, t);
    });
}

#[test]
fn structural_hash_is_stable_under_reallocation() {
    // Equal terms built independently share a structural hash; hashing is
    // alpha-invariant like equality.
    check(128, |rng| {
        let seed = rng.u64();
        let t1 = arb_scoped(&mut Rng::new(seed), 3);
        let t2 = arb_scoped(&mut Rng::new(seed), 3);
        assert_eq!(t1, t2);
        assert_eq!(t1.structural_hash(), t2.structural_hash());
    });
    let a = Term::lambda("x", Term::set(), Term::rel(0));
    let b = Term::lambda("completely_different_name", Term::set(), Term::rel(0));
    assert_eq!(a.structural_hash(), b.structural_hash());
}

/// The swap-list configuration used by the parallel-repair properties.
fn swap_lifting(
    env: &mut pumpkin_pi::pumpkin_kernel::env::Env,
) -> pumpkin_pi::pumpkin_core::Lifting {
    pumpkin_pi::pumpkin_core::search::swap::configure(
        env,
        &"Old.list".into(),
        &"New.list".into(),
        pumpkin_pi::pumpkin_core::NameMap::prefix("Old.", "New."),
    )
    .unwrap()
}

#[test]
fn parallel_module_repair_is_deterministic_across_jobs() {
    // The wavefront scheduler promises bitwise-identical results to the
    // sequential driver for any worker count. Property: on a random subset
    // of the swap module (in work-list order), jobs ∈ {1, 2, 4} all produce
    // the same repaired-name map and the same pretty-printed definitions as
    // `repair_module`. Replay a failure with PUMPKIN_TEST_SEED.
    use pumpkin_pi::pumpkin_core::{LiftState, Repairer};
    let all = stdlib::swap::OLD_MODULE_CONSTANTS;
    let base = stdlib::std_env();
    check(4, |rng| {
        let mut subset: Vec<&str> = all.iter().copied().filter(|_| rng.chance(3, 5)).collect();
        if subset.is_empty() {
            subset.push(all[0]);
        }

        let mut seq_env = base.clone();
        let lifting = swap_lifting(&mut seq_env);
        let mut st = LiftState::new();
        let seq = Repairer::new(&lifting)
            .state(&mut st)
            .run(&mut seq_env, &subset)
            .unwrap();

        for jobs in [1usize, 2, 4] {
            let mut par_env = base.clone();
            let lifting = swap_lifting(&mut par_env);
            let mut st = LiftState::new();
            let par = Repairer::new(&lifting)
                .state(&mut st)
                .jobs(jobs)
                .run(&mut par_env, &subset)
                .unwrap();
            assert_eq!(
                seq.repaired, par.repaired,
                "name map differs at jobs={jobs}"
            );
            for (_, to) in &par.repaired {
                let s = seq_env.const_decl(to).unwrap();
                let p = par_env.const_decl(to).unwrap();
                assert_eq!(
                    pumpkin_lang::pretty(&seq_env, &s.ty),
                    pumpkin_lang::pretty(&par_env, &p.ty),
                    "type of {to} differs at jobs={jobs}"
                );
                match (&s.body, &p.body) {
                    (Some(a), Some(b)) => assert_eq!(
                        pumpkin_lang::pretty(&seq_env, a),
                        pumpkin_lang::pretty(&par_env, b),
                        "body of {to} differs at jobs={jobs}"
                    ),
                    (None, None) => {}
                    _ => panic!("definedness of {to} differs at jobs={jobs}"),
                }
            }
        }
    });
}

#[test]
fn parallel_repair_error_keeps_only_completed_waves() {
    // Error barrier regression: when a mid-module repair fails, the failing
    // wave is dropped wholesale, so the master environment contains exactly
    // the completed earlier waves — every merged constant type-correct.
    use pumpkin_pi::pumpkin_core::{LiftState, ModuleDag, Repairer};
    use pumpkin_pi::pumpkin_kernel::name::GlobalName;
    use pumpkin_pi::pumpkin_kernel::typecheck::{check_closed, check_is_type};

    let all = stdlib::swap::OLD_MODULE_CONSTANTS;
    for jobs in [1usize, 2, 4] {
        let mut env = stdlib::std_env();
        // Poison: the repair target of a mid-module lemma already exists
        // with an unrelated definition, so its wave fails (redeclaration).
        env.define("New.rev_app_distr", Term::ind("nat"), nat_lit(0))
            .unwrap();
        let lifting = swap_lifting(&mut env);

        let nodes: Vec<GlobalName> = all.iter().map(GlobalName::new).collect();
        let waves = ModuleDag::build(&env, &nodes).waves();
        let failing_wave = waves
            .iter()
            .position(|w| w.iter().any(|&i| nodes[i].as_str() == "Old.rev_app_distr"))
            .unwrap();
        assert!(failing_wave > 0, "the poisoned lemma must not be a root");

        let mut st = LiftState::new();
        let res = Repairer::new(&lifting)
            .state(&mut st)
            .jobs(jobs)
            .run(&mut env, all);
        assert!(res.is_err(), "jobs={jobs}: poisoned repair must fail");

        for (w, members) in waves.iter().enumerate() {
            for &i in members {
                let new_name = nodes[i].as_str().replace("Old.", "New.");
                if w < failing_wave {
                    assert!(
                        env.contains(&new_name),
                        "jobs={jobs}: completed-wave constant {new_name} missing"
                    );
                } else if new_name != "New.rev_app_distr" {
                    assert!(
                        !env.contains(&new_name),
                        "jobs={jobs}: {new_name} leaked from dropped wave {w}"
                    );
                }
            }
        }
        // The poison is untouched, and everything merged re-typechecks.
        let poison = env.const_decl(&"New.rev_app_distr".into()).unwrap();
        assert_eq!(poison.ty, Term::ind("nat"));
        let merged: Vec<_> = env
            .constants()
            .filter(|d| d.name.as_str().starts_with("New."))
            .cloned()
            .collect();
        for d in merged {
            check_is_type(&env, &d.ty).unwrap_or_else(|e| panic!("{}: {e}", d.name));
            if let Some(b) = &d.body {
                check_closed(&env, b, &d.ty).unwrap_or_else(|e| panic!("{}: {e}", d.name));
            }
        }
    }
}

#[test]
fn record_eta_conversion_holds_for_pairs_and_sigma() {
    let env = stdlib::std_env();
    // ∀ p : prod nat bool, (fst p, snd p) ≡ p — definitional surjective
    // pairing (our documented deviation; see DESIGN.md).
    let lhs = pumpkin_lang::term(
        &env,
        "fun (p : prod nat bool) =>
           pair nat bool (fst nat bool p) (snd nat bool p)",
    )
    .unwrap();
    let rhs = pumpkin_lang::term(&env, "fun (p : prod nat bool) => p").unwrap();
    assert!(conv(&env, &lhs, &rhs));
    // But distinct pairs are still distinguished.
    let a = pumpkin_lang::term(&env, "pair nat bool O true").unwrap();
    let b = pumpkin_lang::term(&env, "pair nat bool O false").unwrap();
    assert!(!conv(&env, &a, &b));
}

// ---------------------------------------------------------------------
// Hash-consing and NbE-conversion properties
// ---------------------------------------------------------------------

#[test]
fn structural_equality_coincides_with_term_id_equality() {
    // The hash-consing invariant the kernel's memo tables rely on:
    // `t == u` exactly when `t.id() == u.id()`, across random terms built
    // independently.
    check(256, |rng| {
        let seed = rng.u64();
        let t1 = arb_scoped(&mut Rng::new(seed), 3);
        let t2 = arb_scoped(&mut Rng::new(seed), 3);
        let t3 = arb_scoped(rng, 3);
        assert_eq!(t1, t2);
        assert_eq!(t1.id(), t2.id());
        assert_eq!(
            t1 == t3,
            t1.id() == t3.id(),
            "eq/id disagree on {t1} vs {t3}"
        );
    });
    // Alpha-variants share an id (equality ignores binder names) without
    // sharing an allocation (printing does not).
    let a = Term::lambda("x", Term::set(), Term::rel(0));
    let b = Term::lambda("y", Term::set(), Term::rel(0));
    assert_eq!(a.id(), b.id());
    assert_eq!(a, b);
    assert!(!a.same_allocation(&b));
}

#[test]
fn wire_round_trip_preserves_interned_identity() {
    // intern → encode → decode → intern is the identity on `TermId`s —
    // and, because binder names travel on the wire and the arena interns
    // name-sensitively, on allocations too.
    use pumpkin_pi::pumpkin_wire::{
        decode_term, encode_term, term_from_envelope, term_to_envelope, Value,
    };
    check(128, |rng| {
        let t = arb_scoped(rng, 4);
        let bin = decode_term(&encode_term(&t)).unwrap();
        assert_eq!(bin.id(), t.id());
        assert!(
            bin.same_allocation(&t),
            "binary round trip re-allocated {t}"
        );
        let reparsed = Value::parse(&term_to_envelope(&t).to_string()).unwrap();
        let json = term_from_envelope(&reparsed).unwrap();
        assert_eq!(json.id(), t.id());
        assert!(json.same_allocation(&t), "JSON round trip re-allocated {t}");
    });
}

#[test]
fn nbe_conversion_agrees_with_whnf_conversion_on_the_corpus() {
    // The NbE checker and the retained whnf-rewriting oracle must agree on
    // every verdict over the real corpus: all stdlib constants plus the
    // case-study module after a swap repair. Each checker runs against its
    // own Env clone so neither can serve the other's memoized verdicts.
    use pumpkin_pi::pumpkin_kernel::conv::{conv_leq, conv_leq_via_whnf, conv_via_whnf};

    let mut env = stdlib::std_env();
    pumpkin_pi::case_studies::swap_list_module(&mut env).expect("case-study repair");
    let corpus: Vec<Term> = env
        .constants()
        .flat_map(|d| std::iter::once(d.ty.clone()).chain(d.body.clone()))
        .collect();
    assert!(
        corpus.len() > 50,
        "corpus unexpectedly small: {}",
        corpus.len()
    );

    let agree = |t: &Term, u: &Term| {
        let (nbe_env, whnf_env) = (env.clone(), env.clone());
        assert_eq!(
            conv(&nbe_env, t, u),
            conv_via_whnf(&whnf_env, t, u),
            "conv checkers disagree on {t} ≡ {u}"
        );
        let (nbe_env, whnf_env) = (env.clone(), env.clone());
        assert_eq!(
            conv_leq(&nbe_env, t, u),
            conv_leq_via_whnf(&whnf_env, t, u),
            "leq checkers disagree on {t} ≤ {u}"
        );
    };
    for (i, t) in corpus.iter().enumerate() {
        // A guaranteed-positive query: every term converts with its own
        // normal form…
        agree(t, &normalize(&env, t));
        // …and mixed queries against nearby corpus terms (mostly negative).
        for u in corpus.iter().skip(i + 1).take(2) {
            agree(t, u);
        }
    }
}
