//! Property-based tests of equality up to transport (paper §3.2), checked
//! *behaviourally*: for random closed values, transporting then applying
//! the repaired function agrees with applying the original then
//! transporting — the executable reading of `dep_constr_ok`/`dep_elim_ok`
//! (Fig. 12), which the paper does not generate proofs for either.

use pumpkin_pi::case_studies;
use pumpkin_pi::pumpkin_core::{self, LiftState, NameMap, Repairer};
use pumpkin_pi::pumpkin_kernel::env::Env;
use pumpkin_pi::pumpkin_kernel::reduce::normalize;
use pumpkin_pi::pumpkin_kernel::term::Term;
use pumpkin_pi::pumpkin_lang;
use pumpkin_pi::pumpkin_stdlib as stdlib;
use pumpkin_testkit::{check, Rng};
use stdlib::list::list_lit;
use stdlib::nat::{nat_lit, nat_value};

fn swapped_env() -> Env {
    let mut env = stdlib::std_env();
    case_studies::swap_list_module(&mut env).unwrap();
    env
}

fn old_list(xs: &[u64]) -> Term {
    let elems: Vec<Term> = xs.iter().map(|&x| nat_lit(x)).collect();
    list_lit("Old.list", Term::ind("nat"), &elems)
}

fn transport(env: &Env, l: Term) -> Term {
    let _ = env;
    Term::app(Term::const_("Old.list_to_New.list"), [Term::ind("nat"), l])
}

#[test]
fn transport_commutes_with_rev_and_app() {
    let env = swapped_env();
    check(32, |rng| {
        let xs = rng.vec(10, |r| r.below(10));
        let ys = rng.vec(10, |r| r.below(10));
        // f (rev xs) == New.rev (f xs)
        let lhs = transport(
            &env,
            Term::app(Term::const_("Old.rev"), [Term::ind("nat"), old_list(&xs)]),
        );
        let rhs = Term::app(
            Term::const_("New.rev"),
            [Term::ind("nat"), transport(&env, old_list(&xs))],
        );
        assert_eq!(normalize(&env, &lhs), normalize(&env, &rhs));

        // f (app xs ys) == New.app (f xs) (f ys)
        let lhs = transport(
            &env,
            Term::app(
                Term::const_("Old.app"),
                [Term::ind("nat"), old_list(&xs), old_list(&ys)],
            ),
        );
        let rhs = Term::app(
            Term::const_("New.app"),
            [
                Term::ind("nat"),
                transport(&env, old_list(&xs)),
                transport(&env, old_list(&ys)),
            ],
        );
        assert_eq!(normalize(&env, &lhs), normalize(&env, &rhs));
    });
}

#[test]
fn swap_equivalence_round_trips_on_random_lists() {
    let env = swapped_env();
    check(32, |rng| {
        let xs = rng.vec(16, |r| r.below(50));
        let l = old_list(&xs);
        let gf = Term::app(
            Term::const_("New.list_to_Old.list"),
            [Term::ind("nat"), transport(&env, l.clone())],
        );
        assert_eq!(normalize(&env, &gf), l);
    });
}

#[test]
fn repaired_length_is_invariant_under_transport() {
    let env = swapped_env();
    check(32, |rng| {
        let xs = rng.vec(16, |r| r.below(50));
        let old_len = Term::app(
            Term::const_("Old.length"),
            [Term::ind("nat"), old_list(&xs)],
        );
        let new_len = Term::app(
            Term::const_("New.length"),
            [Term::ind("nat"), transport(&env, old_list(&xs))],
        );
        assert_eq!(
            nat_value(&normalize(&env, &old_len)),
            nat_value(&normalize(&env, &new_len))
        );
        assert_eq!(nat_value(&normalize(&env, &old_len)), Some(xs.len() as u64));
    });
}

#[test]
fn binary_transport_preserves_addition() {
    let mut env = stdlib::std_env();
    case_studies::binary_nat(&mut env).unwrap();
    check(32, |rng| {
        use stdlib::bin::{n_lit, n_value};
        let a = rng.below(200);
        let b = rng.below(200);
        // slow_add (repaired) == fast N.add == u64 addition.
        let slow = Term::app(Term::const_("slow_add"), [n_lit(a), n_lit(b)]);
        assert_eq!(n_value(&normalize(&env, &slow)), Some(a + b));
        // of_nat is a homomorphism landing on the same value.
        let via_nat = Term::app(
            Term::const_("N.of_nat"),
            [Term::app(
                Term::const_("add"),
                [nat_lit(a % 40), nat_lit(b % 40)],
            )],
        );
        assert_eq!(n_value(&normalize(&env, &via_nat)), Some(a % 40 + b % 40));
    });
}

#[test]
fn nat_bin_equivalence_round_trips() {
    let env = stdlib::std_env();
    check(48, |rng| {
        use stdlib::bin::{n_lit, n_value};
        let n = rng.below(300);
        let round = Term::app(
            Term::const_("N.of_nat"),
            [Term::app(Term::const_("N.to_nat"), [n_lit(n)])],
        );
        assert_eq!(n_value(&normalize(&env, &round)), Some(n));
        let round2 = Term::app(
            Term::const_("N.to_nat"),
            [Term::app(Term::const_("N.of_nat"), [nat_lit(n % 64)])],
        );
        assert_eq!(nat_value(&normalize(&env, &round2)), Some(n % 64));
    });
}

#[test]
fn ornament_transport_preserves_zip() {
    let mut env = stdlib::std_env();
    case_studies::ornament_zip(&mut env).unwrap();
    let pack = |xs: &[u64]| {
        Term::app(
            Term::const_("list_to_sig_vector"),
            [
                Term::ind("nat"),
                list_lit(
                    "list",
                    Term::ind("nat"),
                    &xs.iter().map(|&x| nat_lit(x)).collect::<Vec<_>>(),
                ),
            ],
        )
    };
    check(24, |rng| {
        let xs = rng.vec(8, |r| r.below(10));
        let ys = rng.vec(8, |r| r.below(10));
        // Unpacking Sig.zip of packed lists equals zip of the lists.
        let sig = Term::app(
            Term::const_("Sig.zip"),
            [Term::ind("nat"), Term::ind("nat"), pack(&xs), pack(&ys)],
        );
        let back = Term::app(
            Term::const_("sig_vector_to_list"),
            [
                Term::app(Term::ind("prod"), [Term::ind("nat"), Term::ind("nat")]),
                sig,
            ],
        );
        let direct = Term::app(
            Term::const_("zip"),
            [
                Term::ind("nat"),
                Term::ind("nat"),
                list_lit(
                    "list",
                    Term::ind("nat"),
                    &xs.iter().map(|&x| nat_lit(x)).collect::<Vec<_>>(),
                ),
                list_lit(
                    "list",
                    Term::ind("nat"),
                    &ys.iter().map(|&x| nat_lit(x)).collect::<Vec<_>>(),
                ),
            ],
        );
        assert_eq!(normalize(&env, &back), normalize(&env, &direct));
    });
}

/// A tiny random Term generator over the REPLICA language.
#[derive(Clone, Debug)]
enum T {
    Var(u64),
    Int(u64),
    Eq(Box<T>, Box<T>),
    Plus(Box<T>, Box<T>),
    Times(Box<T>, Box<T>),
    Minus(Box<T>, Box<T>),
    Choose(u64, Box<T>),
}

fn arb_replica(rng: &mut Rng, depth: u32) -> T {
    if depth == 0 || rng.chance(1, 3) {
        if rng.bool() {
            T::Var(rng.below(4))
        } else {
            T::Int(rng.below(6))
        }
    } else {
        let op = rng.index(5);
        let a = Box::new(arb_replica(rng, depth - 1));
        match op {
            0 => T::Eq(a, Box::new(arb_replica(rng, depth - 1))),
            1 => T::Plus(a, Box::new(arb_replica(rng, depth - 1))),
            2 => T::Times(a, Box::new(arb_replica(rng, depth - 1))),
            3 => T::Minus(a, Box::new(arb_replica(rng, depth - 1))),
            _ => T::Choose(rng.below(4), a),
        }
    }
}

fn build(ind: &str, t: &T) -> Term {
    let c = |j: usize, args: Vec<Term>| Term::app(Term::construct(ind, j), args);
    // Constructor order differs between Old (Int=1, Eq=2) and New
    // (Eq=1, Int=2).
    let (int_j, eq_j) = if ind == "Old.Term" { (1, 2) } else { (2, 1) };
    let mk_id = |i: u64| Term::app(Term::construct("Id", 0), [nat_lit(i)]);
    match t {
        T::Var(i) => c(0, vec![mk_id(*i)]),
        T::Int(z) => c(int_j, vec![nat_lit(*z)]),
        T::Eq(a, b) => c(eq_j, vec![build(ind, a), build(ind, b)]),
        T::Plus(a, b) => c(3, vec![build(ind, a), build(ind, b)]),
        T::Times(a, b) => c(4, vec![build(ind, a), build(ind, b)]),
        T::Minus(a, b) => c(5, vec![build(ind, a), build(ind, b)]),
        T::Choose(i, t) => c(6, vec![mk_id(*i), build(ind, t)]),
    }
}

#[test]
fn replica_transport_preserves_eval() {
    let mut env = stdlib::std_env();
    case_studies::replica_variant(&mut env, "New.Term", "New.").unwrap();

    let env_fn = pumpkin_lang::term(&env, "fun (i : Id) => S O").unwrap();
    check(32, |rng| {
        let t = arb_replica(rng, 3);
        let old_v = Term::app(
            Term::const_("Old.eval"),
            [env_fn.clone(), build("Old.Term", &t)],
        );
        let new_v = Term::app(
            Term::const_("New.eval"),
            [env_fn.clone(), build("New.Term", &t)],
        );
        assert_eq!(
            nat_value(&normalize(&env, &old_v)),
            nat_value(&normalize(&env, &new_v))
        );
        // And the transported term evaluates identically.
        let f = Term::app(
            Term::const_("Old.Term_to_New.Term"),
            [build("Old.Term", &t)],
        );
        let transported_v = Term::app(Term::const_("New.eval"), [env_fn.clone(), f]);
        assert_eq!(
            nat_value(&normalize(&env, &old_v)),
            nat_value(&normalize(&env, &transported_v))
        );
    });
}

#[test]
fn cache_never_changes_results() {
    // Same repair with and without the subterm cache yields identical
    // definitions (§4.4's aggressive caching is semantics-preserving), and
    // likewise for the kernel-layer conv/whnf cache.
    let mut env1 = stdlib::std_env();
    let l1 = pumpkin_core::search::swap::configure(
        &mut env1,
        &"Old.Term".into(),
        &"New.Term".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st1 = LiftState::new();
    let report1 = Repairer::new(&l1)
        .state(&mut st1)
        .run(&mut env1, case_studies::REPLICA_CONSTANTS)
        .unwrap();

    let mut env2 = stdlib::std_env();
    env2.set_kernel_cache(false);
    let l2 = pumpkin_core::search::swap::configure(
        &mut env2,
        &"Old.Term".into(),
        &"New.Term".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st2 = LiftState::without_cache();
    Repairer::new(&l2)
        .state(&mut st2)
        .run(&mut env2, case_studies::REPLICA_CONSTANTS)
        .unwrap();

    for c in case_studies::REPLICA_CONSTANTS {
        let n: pumpkin_pi::pumpkin_kernel::name::GlobalName = c.replace("Old.", "New.").into();
        assert_eq!(
            env1.const_decl(&n).unwrap().body,
            env2.const_decl(&n).unwrap().body
        );
    }
    // The cached run did real kernel work, so the two runs compared above
    // were non-trivial. (Hash-consing made alpha-equal conversion queries
    // short-circuit on `t == u` before reaching the memo table, so this
    // module no longer generates memo traffic to count — the kernel's own
    // unit tests pin memo hit/miss accounting.)
    let k = &report1.kernel;
    assert!(
        k.beta_steps + k.delta_steps + k.iota_steps > 0,
        "repair did no kernel reduction work: {k}"
    );
}

#[test]
fn random_enum_permutations_configure_and_round_trip() {
    // For random constructor permutations of a 6-constructor enum, the
    // configured equivalence round-trips every value.
    let mut base = stdlib::std_env();
    base.declare_inductive(stdlib::replica::enum_decl("E6", 6))
        .unwrap();
    base.declare_inductive(stdlib::replica::enum_decl("F6", 6))
        .unwrap();
    check(16, |rng| {
        let perm = rng.permutation(6);
        let mut env = base.clone();
        let lifting = pumpkin_core::search::swap::configure_with(
            &mut env,
            &"E6".into(),
            &"F6".into(),
            &perm,
            NameMap::prefix("E6.", "F6."),
        )
        .unwrap();
        let eqv = lifting.equivalence.as_ref().unwrap();
        #[allow(clippy::needless_range_loop)]
        for j in 0..6 {
            // f maps constructor j to perm[j]; g inverts.
            let fx = Term::app(Term::const_(eqv.f.clone()), [Term::construct("E6", j)]);
            assert_eq!(normalize(&env, &fx), Term::construct("F6", perm[j]));
            let gfx = Term::app(Term::const_(eqv.g.clone()), [normalize(&env, &fx)]);
            assert_eq!(normalize(&env, &gfx), Term::construct("E6", j));
        }
    });
}
