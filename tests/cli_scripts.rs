//! Every shipped CLI walkthrough script runs without failures.

use pumpkin_pi::cli::{run_script, Session};

#[test]
fn all_example_scripts_run_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/scripts");
    let mut ran = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("pi") {
            continue;
        }
        let script = std::fs::read_to_string(&path).unwrap();
        let mut session = Session::new();
        let failures = run_script(&mut session, &script);
        assert_eq!(failures, 0, "script {path:?} had {failures} failure(s)");
        ran += 1;
    }
    assert!(ran >= 4, "expected at least four scripts, ran {ran}");
}
