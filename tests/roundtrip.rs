//! Whole-library round-trip: every constant in the standard environment
//! pretty-prints to surface syntax that re-parses to the identical term —
//! the printer really is the parser's inverse over the full corpus.

use pumpkin_pi::pumpkin_lang;
use pumpkin_pi::pumpkin_stdlib as stdlib;

#[test]
fn every_stdlib_body_round_trips_through_the_printer() {
    let env = stdlib::std_env();
    let mut checked = 0;
    for decl in env.constants() {
        let printed_ty = pumpkin_lang::pretty(&env, &decl.ty);
        let reparsed_ty = pumpkin_lang::term(&env, &printed_ty)
            .unwrap_or_else(|e| panic!("{}: type `{printed_ty}` fails to reparse: {e}", decl.name));
        assert_eq!(reparsed_ty, decl.ty, "type of {}", decl.name);
        if let Some(body) = &decl.body {
            let printed = pumpkin_lang::pretty(&env, body);
            let reparsed = pumpkin_lang::term(&env, &printed)
                .unwrap_or_else(|e| panic!("{}: body fails to reparse: {e}", decl.name));
            assert_eq!(&reparsed, body, "body of {}", decl.name);
        }
        checked += 1;
    }
    assert!(checked > 50, "expected a substantial corpus, saw {checked}");
}

#[test]
fn repaired_constants_round_trip_too() {
    let mut env = stdlib::std_env();
    pumpkin_pi::case_studies::swap_list_module(&mut env).unwrap();
    pumpkin_pi::case_studies::ornament_zip(&mut env).unwrap();
    for name in [
        "New.rev_app_distr",
        "New.fold_app",
        "Sig.zip_with_is_zip",
        "Sig.rev_length",
    ] {
        let decl = env.const_decl(&name.into()).unwrap().clone();
        let body = decl.body.unwrap();
        let printed = pumpkin_lang::pretty(&env, &body);
        let reparsed = pumpkin_lang::term(&env, &printed).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reparsed, body, "{name}");
    }
}
