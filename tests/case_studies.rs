//! End-to-end integration tests: the paper's four case studies (§6), run
//! through the shared drivers and validated with the kernel, the
//! source-freedom check (repair ≠ reuse, §3.2), and the decompiler
//! round-trip.

use pumpkin_pi::case_studies;
use pumpkin_pi::pumpkin_core::{self, repair::check_source_free, LiftState, NameMap, Repairer};
use pumpkin_pi::pumpkin_kernel::reduce::normalize;
use pumpkin_pi::pumpkin_kernel::term::Term;
use pumpkin_pi::pumpkin_lang;
use pumpkin_pi::pumpkin_stdlib as stdlib;
use pumpkin_pi::pumpkin_tactics;

#[test]
fn section_2_swap_whole_list_module() {
    let mut env = stdlib::std_env();
    let report = case_studies::swap_list_module(&mut env).unwrap();
    assert_eq!(
        report.repaired.len(),
        stdlib::swap::OLD_MODULE_CONSTANTS.len()
    );

    // Every repaired constant exists, type checks (by construction), and is
    // free of Old.list.
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    for (_, to) in &report.repaired {
        check_source_free(&env, &lifting, to).unwrap();
    }

    // Fig. 2: the decompiled script for New.rev_app_distr re-proves it.
    let (goal, script) = pumpkin_tactics::decompile_constant(&env, "New.rev_app_distr").unwrap();
    let script = pumpkin_tactics::second_pass(&script);
    pumpkin_tactics::prove(&env, &goal, &script).unwrap();
    let rendered = pumpkin_tactics::render(&env, &[], &script);
    assert!(rendered.contains("induction"));
    assert!(rendered.contains("symmetry"));
    assert!(rendered.contains("New.app_nil_r"));
}

#[test]
fn section_6_1_replica_benchmark_and_variants() {
    let mut env = stdlib::std_env();
    // The headline variant: Int/Eq swapped (Fig. 16).
    let report = case_studies::replica_variant(&mut env, "New.Term", "New.").unwrap();
    assert_eq!(report.repaired.len(), 5);

    // 24 type-correct mappings, desired one first (the paper's "all other
    // 23 type-correct permutations").
    let a = env.inductive(&"Old.Term".into()).unwrap().clone();
    let b = env.inductive(&"New.Term".into()).unwrap().clone();
    let mappings = pumpkin_core::search::swap::discover_mappings(&a, &b);
    assert_eq!(mappings.len(), 24);
    assert_eq!(mappings[0], vec![0, 2, 1, 3, 4, 5, 6]);

    // Harder variants: rename-all, permute >2, permute+rename.
    for (ty, prefix) in case_studies::declare_replica_variants(&mut env).unwrap() {
        let r = case_studies::replica_variant(&mut env, &ty, &prefix).unwrap();
        assert_eq!(r.repaired.len(), 5, "variant {ty}");
    }

    // The key theorem's repaired script re-proves.
    let (goal, script) =
        pumpkin_tactics::decompile_constant(&env, "New.eval_eq_true_or_false").unwrap();
    pumpkin_tactics::prove(&env, &goal, &pumpkin_tactics::second_pass(&script)).unwrap();
}

#[test]
fn section_3_1_1_factor_constructors() {
    let mut env = stdlib::std_env();
    let report = case_studies::factor_demorgan(&mut env).unwrap();
    assert_eq!(report.repaired.len(), 5);
    // The repaired and matches the paper's J_rect/bool_rect shape: check it
    // case-analyzes the wrapped bool by computing the truth table.
    for (x, y, expect) in [
        ("true", "true", "true"),
        ("true", "false", "false"),
        ("false", "true", "false"),
        ("false", "false", "false"),
    ] {
        let t = pumpkin_lang::term(&env, &format!("J.and (makeJ {x}) (makeJ {y})")).unwrap();
        let e = pumpkin_lang::term(&env, &format!("makeJ {expect}")).unwrap();
        assert_eq!(normalize(&env, &t), normalize(&env, &e));
    }
    // De Morgan over J re-proves from its decompiled script.
    let (goal, script) = pumpkin_tactics::decompile_constant(&env, "J.demorgan_1").unwrap();
    pumpkin_tactics::prove(&env, &goal, &pumpkin_tactics::second_pass(&script)).unwrap();
}

#[test]
fn section_6_2_vectors_from_lists_both_stages() {
    let mut env = stdlib::std_env();
    pumpkin_core::smartelim::packed_list(&mut env).unwrap();
    let report = case_studies::ornament_zip(&mut env).unwrap();
    assert_eq!(report.repaired.len(), case_studies::ZIP_CONSTANTS.len());
    case_studies::vectors_at_index(&mut env).unwrap();

    // The final lemma exists at the right statement.
    let decl = env.const_decl(&"vzip_with_is_zip".into()).unwrap();
    let printed = pumpkin_lang::pretty(&env, &decl.ty);
    assert!(printed.contains("vector (prod A B) n"), "{printed}");

    // vzip and vzip_with agree computationally on concrete vectors.
    use stdlib::nat::nat_lit;
    use stdlib::vector::vector_lit;
    let v1 = vector_lit(Term::ind("nat"), &[nat_lit(1), nat_lit(2), nat_lit(3)]);
    let v2 = vector_lit(Term::ind("nat"), &[nat_lit(4), nat_lit(5), nat_lit(6)]);
    let app = |f: &str| {
        Term::app(
            Term::const_(f),
            [
                Term::ind("nat"),
                Term::ind("nat"),
                nat_lit(3),
                v1.clone(),
                v2.clone(),
            ],
        )
    };
    assert_eq!(
        normalize(&env, &app("vzip")),
        normalize(&env, &app("vzip_with"))
    );
}

#[test]
fn section_6_3_binary_naturals() {
    let mut env = stdlib::std_env();
    let (slow_add, lemma) = case_studies::binary_nat(&mut env).unwrap();
    assert_eq!(slow_add.as_str(), "slow_add");
    assert_eq!(lemma.as_str(), "slow_add_n_Sm");

    // Nothing repaired refers to nat.
    let names = NameMap::default();
    let lifting = pumpkin_core::manual::configure_nat_to_bin(&mut env, names).unwrap();
    check_source_free(&env, &lifting, &slow_add).unwrap();
    check_source_free(&env, &lifting, &lemma).unwrap();

    // slow_add agrees with fast N.add on a sweep of values.
    use stdlib::bin::{n_lit, n_value};
    for a in 0u64..8 {
        for b in 0u64..8 {
            let slow = Term::app(Term::const_("slow_add"), [n_lit(a), n_lit(b)]);
            let fast = Term::app(Term::const_("N.add"), [n_lit(a), n_lit(b)]);
            assert_eq!(
                n_value(&normalize(&env, &slow)),
                n_value(&normalize(&env, &fast)),
                "{a}+{b}"
            );
        }
    }
}

#[test]
fn section_6_4_galois_round_trip() {
    let mut env = stdlib::std_env();
    let (record_lemma, round) = case_studies::galois_round_trip(&mut env).unwrap();
    assert_eq!(record_lemma.as_str(), "Record.corkLemma");
    // The round-tripped lemma's statement is convertible with the original
    // tuple-level statement.
    let orig = env.const_decl(&"corkLemma".into()).unwrap().ty.clone();
    let got = env.const_decl(&round).unwrap().ty.clone();
    assert!(pumpkin_pi::pumpkin_kernel::conv::conv(&env, &orig, &got));
}

#[test]
fn full_pipeline_repair_and_decompile_everything() {
    // Run the whole Fig. 6 pipeline (Configure → Transform → Decompile →
    // validate) over every proof in the swapped list module.
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st = LiftState::new();
    for name in stdlib::swap::OLD_MODULE_CONSTANTS {
        let (repaired, validated) =
            pumpkin_pi::repair_decompile_validate(&mut env, &lifting, &mut st, name).unwrap();
        assert!(validated, "script for {} failed to re-prove", repaired.name);
    }
}

#[test]
fn section_6_3_multiplication_repairs_through_dependency() {
    // mul references add; repairing mul under the manual nat → N
    // configuration repairs add on demand (to slow_add) and produces a
    // working slow_mul.
    let mut env = stdlib::std_env();
    case_studies::binary_nat(&mut env).unwrap();
    use stdlib::bin::{n_lit, n_value};
    for (a, b) in [(0u64, 5u64), (3, 4), (7, 9), (12, 12)] {
        let t = Term::app(Term::const_("slow_mul"), [n_lit(a), n_lit(b)]);
        assert_eq!(n_value(&normalize(&env, &t)), Some(a * b), "{a}*{b}");
    }
    // slow_mul's body references slow_add, not add.
    let body = env
        .const_decl(&"slow_mul".into())
        .unwrap()
        .body
        .clone()
        .unwrap();
    assert!(body.mentions_global(&"slow_add".into()));
    assert!(!body.mentions_global(&"add".into()));
}

#[test]
fn repair_all_sweeps_the_whole_environment() {
    // The fully automatic Repair module: sweep everything that mentions
    // Old.list, excluding nothing but the equivalence itself.
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st = LiftState::new();
    let report = Repairer::new(&lifting)
        .state(&mut st)
        .run_all(&mut env, &[])
        .unwrap();
    // Everything in the module list was found by the sweep.
    for c in stdlib::swap::OLD_MODULE_CONSTANTS {
        assert!(
            report.renamed(c).is_some() || st.const_map.contains_key(*c),
            "sweep missed {c}"
        );
    }
    for (_, to) in &report.repaired {
        check_source_free(&env, &lifting, to).unwrap();
    }
}

#[test]
fn custom_eliminator_decompilation_for_binary_proofs() {
    // The §6.3.3 improvement the paper proposes: the decompiler supports
    // custom eliminators like N.peano_rect, so the *repaired* binary proof
    // decompiles to `induction … using N.peano_rect` and still re-proves.
    let mut env = stdlib::std_env();
    case_studies::binary_nat(&mut env).unwrap();
    let (goal, raw) = pumpkin_tactics::decompile_constant(&env, "slow_add_n_Sm").unwrap();
    let script = pumpkin_tactics::second_pass(&raw);
    let rendered = pumpkin_tactics::render(&env, &[], &script);
    assert!(
        rendered.contains("using N.peano_rect"),
        "expected a custom-eliminator induction:\n{rendered}"
    );
    pumpkin_tactics::prove(&env, &goal, &script).unwrap();

    // Same for the ornament side: Sig proofs decompile through
    // list_sig.dep_elim.
    case_studies::ornament_zip(&mut env).unwrap();
    let (goal2, raw2) = pumpkin_tactics::decompile_constant(&env, "Sig.app_nil_r").unwrap();
    let script2 = pumpkin_tactics::second_pass(&raw2);
    let rendered2 = pumpkin_tactics::render(&env, &[], &script2);
    assert!(rendered2.contains("using list_sig.dep_elim"), "{rendered2}");
    pumpkin_tactics::prove(&env, &goal2, &script2).unwrap();
}

#[test]
fn old_type_can_be_removed_after_full_repair() {
    // The paper's §2 punchline: "When we are done, we can get rid of
    // Old.list entirely."
    let mut env = stdlib::std_env();
    let lifting = pumpkin_core::search::swap::configure(
        &mut env,
        &"Old.list".into(),
        &"New.list".into(),
        NameMap::prefix("Old.", "New."),
    )
    .unwrap();
    let mut st = LiftState::new();
    Repairer::new(&lifting)
        .state(&mut st)
        .run_all(&mut env, &[])
        .unwrap();

    // While the Old.* module and equivalence are still around, removal is
    // refused (the old constants reference the type).
    assert!(env.remove(&"Old.list".into()).is_err());

    // Remove the old module and the equivalence (in reverse dependency
    // order), then the type itself.
    for c in [
        "Old.list_to_New.list_retraction",
        "Old.list_to_New.list_section",
        "New.list_to_Old.list",
        "Old.list_to_New.list",
    ] {
        env.remove(&c.into()).unwrap();
    }
    let mut old_consts: Vec<_> = env
        .constants()
        .filter(|d| d.name.as_str().starts_with("Old."))
        .map(|d| d.name.clone())
        .collect();
    // Remove in reverse declaration order so dependencies go last.
    let order: Vec<_> = env.order().to_vec();
    old_consts.sort_by_key(|n| {
        std::cmp::Reverse(order.iter().position(|r| match r {
            pumpkin_pi::pumpkin_kernel::env::GlobalRef::Const(c) => c == n,
            _ => false,
        }))
    });
    for c in old_consts {
        env.remove(&c).unwrap();
    }
    env.remove(&"Old.list".into()).unwrap();
    assert!(!env.contains("Old.list"));
    assert!(!env.contains("Old.nil"));

    // The repaired world still works.
    let t = pumpkin_lang::term(&env, "New.rev nat (New.nil nat)").unwrap();
    assert_eq!(
        normalize(&env, &t),
        pumpkin_lang::term(&env, "New.nil nat").unwrap()
    );
}
